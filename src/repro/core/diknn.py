"""DIKNN: Density-aware Itinerary KNN query processing (the paper's §3–4).

Execution phases:

1. **Routing phase** — the query is GPSR-routed from the sink to the home
   node (nearest node to the query point q); each hop appends its location
   and newly-encountered-neighbor count to the information list L (§4.1).
2. **KNN boundary estimation** — the home node runs the linear KNNB
   algorithm over L to get the boundary radius R (§4.2).
3. **Query dissemination** — the boundary is split into S cone-shaped
   sectors traversed by concurrent sub-itineraries.  Q-nodes broadcast
   probes; D-nodes reply with angle-spread contention timers; partial
   results ride the token to the next Q-node.  Rendezvous gossip at sector
   borders feeds dynamic boundary adjustment (§4.3); the last Q-node of a
   sector applies the mobility assurance expansion R' = R + g(te-ts)µ and
   finally routes the sector's bundle back to the sink.

The sink merges the S sector bundles into the query result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..geometry import TWO_PI, Vec2, normalize_angle
from ..net.messages import Message
from ..net.node import SensorNode
from ..sim.engine import EventHandle
from .base import CompletionFn, QueryProtocol
from .collection import (CollectionPlan, build_precedence,
                         expected_new_responders, scheme_reply_delay,
                         should_reply)
from .dissemination import NextHop, TokenState, choose_next_qnode
from .itinerary import full_coverage_width
from .knnb import InfoList, count_new_neighbors, knnb_radius
from .query import Candidate, KNNQuery, merge_candidates
from .rendezvous import (SectorStats, evaluate_boundary,
                         merge_stats)


@dataclass(frozen=True)
class DIKNNConfig:
    """Tunables of the DIKNN protocol (paper defaults from §5.1)."""

    sectors: int = 8
    width: Optional[float] = None      # default: sqrt(3)/2 * radio range
    spacing_factor: float = 0.8        # waypoint spacing as fraction of r
    time_unit_s: float = 0.018         # m, the data-collection time unit
    collection_scheme: str = "hybrid"  # footnote 1: contention, token_ring,
                                       # or the hybrid of both
    rendezvous: bool = True            # dynamic boundary adjustment (§4.3)
    lookahead: int = 4                 # void-bypass waypoint lookahead
    max_detours: int = 4               # consecutive no-progress hops before
                                       # a sector gives up (empty region)
    link_margin: float = 0.9           # next-Q-node link safety margin
    max_boundary_extensions: int = 1
    extend_cap_factor: float = 1.6     # max extension multiple of initial R
    boundary_slack_factor: float = 0.5  # D-nodes reply within R + slack*w
    query_base_bytes: int = 20
    probe_bytes: int = 24
    data_base_bytes: int = 10
    rendezvous_base_bytes: int = 12
    result_base_bytes: int = 16
    requery_base_bytes: int = 22
    #: sink-side per-sector watchdog: after this many seconds without a
    #: sector's result bundle, a fresh sub-itinerary token is re-dispatched
    #: into the missing sectors (None/0 disables self-healing).
    sector_watchdog_s: Optional[float] = 2.5
    max_sector_retries: int = 2

    def __post_init__(self) -> None:
        if self.sectors < 1:
            raise ValueError("sector count must be >= 1")
        if self.time_unit_s <= 0:
            raise ValueError("time unit must be positive")
        if self.sector_watchdog_s is not None and self.sector_watchdog_s < 0:
            raise ValueError("sector watchdog must be >= 0 or None")
        if self.max_sector_retries < 0:
            raise ValueError("max sector retries must be >= 0")


def sector_of(point: Vec2, center: Vec2, sectors: int) -> int:
    """Which of the S sectors (CCW from angle 0) contains ``point``."""
    if point == center:
        return 0
    angle = normalize_angle((point - center).angle())
    return min(int(angle / (TWO_PI / sectors)), sectors - 1)


def near_sector_border(point: Vec2, center: Vec2, sectors: int,
                       width: float) -> bool:
    """True when ``point`` is within ~w of a sector border line — the
    rendezvous areas of Figure 6."""
    if sectors < 2:
        return False
    rho = point.distance_to(center)
    if rho <= 1e-9:
        return True
    angle = normalize_angle((point - center).angle())
    sector_angle = TWO_PI / sectors
    offset = math.fmod(angle, sector_angle)
    to_border = min(offset, sector_angle - offset)
    return rho * math.sin(to_border) <= width


class _QNodeSession:
    """Transient per-Q-node collection state (lives on the current host)."""

    __slots__ = ("node_id", "query_id", "sector", "token", "plan",
                 "prev_pos", "replies", "gossip", "deadline")

    def __init__(self, node_id: int, query_id: int, sector: int,
                 token: Optional[TokenState], plan: CollectionPlan,
                 prev_pos: Optional[Vec2]):
        self.node_id = node_id
        self.query_id = query_id
        self.sector = sector
        self.token = token
        self.plan = plan
        self.prev_pos = prev_pos
        self.replies: List[tuple] = []
        self.gossip: Dict[int, SectorStats] = {}
        self.deadline: Optional[EventHandle] = None


class DIKNNProtocol(QueryProtocol):
    """The paper's contribution, as a pluggable query protocol."""

    name = "diknn"

    KIND_QUERY = "diknn.query"
    KIND_TOKEN = "diknn.token"
    KIND_PROBE = "diknn.probe"
    KIND_DATA = "diknn.data"
    KIND_RDV = "diknn.rdv"
    KIND_RESULT = "diknn.result"
    KIND_REQUERY = "diknn.requery"

    HOME_SECTOR = -1

    def __init__(self, config: Optional[DIKNNConfig] = None):
        super().__init__()
        self.config = config or DIKNNConfig()
        self._sessions: Dict[Tuple[int, int], _QNodeSession] = {}
        self._responded: Dict[int, Set[int]] = {}
        self._rdv_cache: Dict[int, Dict[int, Dict[int, SectorStats]]] = {}
        self._homes_seen: Set[int] = set()
        self._initial_radius: Dict[int, float] = {}
        self._qnode_hops: Dict[int, int] = {}
        # Sink-side self-healing state: which sectors have reported
        # (duplicate-bundle suppression) and the per-query watchdog.
        self._sectors_seen: Dict[int, Set[int]] = {}
        self._watchdogs: Dict[int, dict] = {}
        self._requeries_seen: Set[Tuple[int, int]] = set()
        #: sector re-dispatches performed (diagnostics/tests)
        self.redispatches = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def _install_handlers(self) -> None:
        self.router.on_hop(self.KIND_QUERY, self._on_query_hop)
        self.router.on_deliver(self.KIND_QUERY, self._on_query_delivered)
        self.router.on_hop(self.KIND_REQUERY, self._on_query_hop)
        self.router.on_deliver(self.KIND_REQUERY, self._on_requery_delivered)
        self.router.on_deliver(self.KIND_RESULT, self._on_result)
        self.network.register_handler(self.KIND_TOKEN, self._on_token)
        self.network.register_handler(self.KIND_PROBE, self._on_probe)
        self.network.register_handler(self.KIND_DATA, self._on_data)
        self.network.register_handler(self.KIND_RDV, self._on_rendezvous)

    @property
    def _width(self) -> float:
        if self.config.width is not None:
            return self.config.width
        return full_coverage_width(self.network.radio.range_m)

    @property
    def _spacing(self) -> float:
        return self.config.spacing_factor * self.network.radio.range_m

    @property
    def _link_reach(self) -> float:
        return self.config.link_margin * self.network.radio.range_m

    def _extend_cap(self, initial_radius: float) -> float:
        """Hard bound for dynamic extensions: a multiple of the first
        estimate (the network diameter would also bound anything sensible,
        but is unknown to the nodes)."""
        return self.config.extend_cap_factor * initial_radius

    # ------------------------------------------------------------------
    # phase 1: issue + routing with information gathering
    # ------------------------------------------------------------------

    #: route-drop retries for the query and per-sector result bundles
    MAX_ROUTE_RETRIES = 2
    RETRY_PAUSE_S = 0.25

    def issue(self, sink: SensorNode, query: KNNQuery,
              on_complete: CompletionFn) -> None:
        self._register_query(query, self.config.sectors, on_complete)
        if self.obs is not None:
            self.obs.query_issued(query, sink.id, self.network.sim.now)
        if self.config.sector_watchdog_s:
            self._watchdogs[query.query_id] = {
                "sink": sink, "query": query, "retries": 0,
                "handle": self.network.sim.schedule_in(
                    self.config.sector_watchdog_s,
                    lambda: self._watchdog_fire(query.query_id)),
            }
        self._send_query(sink, query, attempt=0)

    def _send_query(self, sink: SensorNode, query: KNNQuery,
                    attempt: int) -> None:
        if self.obs is not None:
            self.obs.route_attempt(query.query_id, attempt,
                                   self.network.sim.now)
        payload = {
            "query_id": query.query_id,
            "k": query.k,
            "g": query.assurance_gain,
            "point": (query.point.x, query.point.y),
            "sink_id": sink.id,
            "sink_pos": (sink.position().x, sink.position().y),
            "L": {"locs": [], "encs": []},
        }

        def _on_drop(_inner: dict, _node) -> None:
            # The routing phase died mid-network (mobility): re-issue after
            # a beat, with a fresh information list.
            if attempt >= self.MAX_ROUTE_RETRIES or not sink.alive:
                return
            self.network.sim.schedule_in(
                self.RETRY_PAUSE_S,
                lambda: self._send_query(sink, query, attempt + 1))

        self.router.send(sink, query.point, self.KIND_QUERY, payload,
                         self.config.query_base_bytes, on_drop=_on_drop)

    def _on_query_hop(self, node: SensorNode, inner: dict) -> Optional[int]:
        """Routing-phase information gathering (§4.1): append loc_i, enc_i."""
        pos = node.position()
        locs = inner["L"]["locs"]
        encs = inner["L"]["encs"]
        prev = Vec2(*locs[-1]) if locs else None
        neighbor_positions = [e.position for e in node.neighbors()]
        enc = count_new_neighbors(neighbor_positions, prev,
                                  self.network.radio.range_m)
        locs.append((pos.x, pos.y))
        encs.append(enc)
        return (self.config.query_base_bytes
                + len(locs) * InfoList.ENTRY_BYTES)

    # ------------------------------------------------------------------
    # phase 2: home node — KNNB + initial collection
    # ------------------------------------------------------------------

    def _on_query_delivered(self, node: SensorNode, inner: dict) -> None:
        query_id = inner["query_id"]
        if query_id in self._homes_seen:
            return
        self._homes_seen.add(query_id)
        q = Vec2(*inner["point"])
        info = InfoList.from_payload(inner["L"])
        radius = knnb_radius(info, q, self.network.radio.range_m,
                             inner["k"])
        self._initial_radius[query_id] = radius
        if self.obs is not None:
            self.obs.home_reached(query_id, node.id, radius,
                                  inner.get("_route_hops",
                                            len(inner["L"]["locs"])),
                                  self.network.sim.now)
        # Dissemination starts immediately: the home node fans the sector
        # tokens out in parallel; collection happens at the sector Q-nodes
        # (keeping the home from serializing a collection window of its
        # own ahead of everything else).
        self._dispatch_sectors(node, query_id, inner, q, radius)

    def _make_plan(self, node: SensorNode, q: Vec2, radius: float,
                   prev_pos: Optional[Vec2]) -> CollectionPlan:
        scheme = self.config.collection_scheme
        boundary = radius + self.config.boundary_slack_factor * self._width
        entries = node.neighbors()
        ref = (q - node.position()).angle() if q != node.position() else 0.0
        # Pure contention never suppresses previously-covered nodes.
        suppress_prev = prev_pos if scheme == "hybrid" else None
        expected = expected_new_responders(
            [e.position for e in entries], q, boundary, suppress_prev,
            self.network.radio.range_m)
        precedence = ()
        if scheme == "token_ring":
            b_sq = boundary * boundary
            in_boundary = [e for e in entries
                           if e.position.distance_sq_to(q) <= b_sq]
            precedence = build_precedence(node.position(), ref, in_boundary)
        return CollectionPlan(reference_angle=ref,
                              expected_responders=expected,
                              time_unit_s=self.config.time_unit_s,
                              scheme=scheme, precedence=precedence)

    def _send_probe(self, node: SensorNode, session: _QNodeSession,
                    q: Vec2, radius: float) -> None:
        pos = node.position()
        plan = session.plan
        suppress = (session.prev_pos
                    if plan.scheme == "hybrid" else None)
        node.broadcast(self.KIND_PROBE, {
            "query_id": session.query_id,
            "sector": session.sector,
            "qnode": node.id,
            "qnode_pos": (pos.x, pos.y),
            "point": (q.x, q.y),
            "radius": radius,
            "ref_angle": plan.reference_angle,
            "expected": plan.expected_responders,
            "m": plan.time_unit_s,
            "scheme": plan.scheme,
            "precedence": list(plan.precedence),
            "prev_pos": ((suppress.x, suppress.y)
                         if suppress is not None else None),
        }, plan.wire_bytes(self.config.probe_bytes))

    def _dispatch_sectors(self, node: SensorNode, query_id: int,
                          inner: dict, q: Vec2, radius: float,
                          sectors: Optional[List[int]] = None) -> None:
        """Fan sub-itinerary tokens out of ``node`` (the home node).

        ``sectors`` restricts dispatch to those sector indices (used by
        the sink watchdog's re-dispatch); default is all of them.
        """
        if not node.alive:
            return
        cfg = self.config
        now = self.network.sim.now
        pos = node.position()
        targets = (list(range(cfg.sectors)) if sectors is None
                   else [j for j in sectors if 0 <= j < cfg.sectors])

        # The home node contributes its own response to its sector's
        # token; everyone else is collected by the sector Q-nodes.
        per_sector: Dict[int, List[tuple]] = {j: [] for j in targets}
        home_sector = sector_of(pos, q, cfg.sectors)
        if home_sector in per_sector and \
                query_id not in self._responded.get(node.id, set()):
            self._mark_responded(node.id, query_id)
            per_sector[home_sector].append(self._candidate_tuple(node, now))

        finished: List[TokenState] = []
        neighbors = node.neighbors()
        for j in targets:
            if self.obs is not None:
                self.obs.sector_dispatched(query_id, j, node.id, now)
            token = TokenState(
                query_id=query_id, sink_id=inner["sink_id"],
                sink_pos=Vec2(*inner["sink_pos"]), point=q, k=inner["k"],
                assurance_gain=inner["g"], sectors_total=cfg.sectors,
                sector=j,
                width=self._width, spacing=self._spacing,
                inverted=(cfg.rendezvous and j % 2 == 1),
                radius_history=[radius], started_at=now)
            token.candidates = self._merge_wire([], per_sector[j], q,
                                                inner["k"])
            token.explored = len(per_sector[j])
            token.record_visit(node.id)
            token.stats[j] = SectorStats(
                explored=token.explored,
                progress_radius=min(pos.distance_to(q)
                                    + self.network.radio.range_m,
                                    radius)).to_wire()
            itinerary = token.build_itinerary()
            hop = choose_next_qnode(pos, neighbors, itinerary.waypoints,
                                    token.waypoint_index, token.width,
                                    token.visited, cfg.lookahead,
                                    max_reach=self._link_reach)
            self._note_hop(token, hop, node)
            if hop.node_id is None:
                self._note_finish(node, token, hop, itinerary)
                finished.append(token)
            else:
                self._send_token(node, hop.node_id, token,
                                 first_hop=True)

        if finished:
            self._send_result_bundle(node, finished)

    def _note_hop(self, token: TokenState, hop: NextHop,
                  node: Optional[SensorNode] = None) -> None:
        """Update waypoint progress and the void-detour budget."""
        token.waypoint_index = hop.waypoint_index
        if hop.void_detour:
            token.voids += 1
            token.consecutive_detours += 1
            if self.obs is not None and node is not None:
                self.obs.sector_void(token.query_id, token.sector,
                                     node.id, token.voids,
                                     token.consecutive_detours,
                                     self.network.sim.now)
        else:
            token.consecutive_detours = 0

    def _note_finish(self, node: SensorNode, token: TokenState,
                     hop: NextHop, itinerary) -> None:
        """Observer note of why a sector traversal ended here."""
        if self.obs is None:
            return
        if token.consecutive_detours > self.config.max_detours:
            reason = "detours_exhausted"
        elif hop.dead_end:
            reason = "dead_end"
        else:
            reason = "plan_complete"
        self.obs.sector_finished(
            token.query_id, token.sector, node.id, reason,
            token.waypoint_index, token.voids,
            itinerary.progress_fraction(token.waypoint_index),
            self.network.sim.now)

    def _hop_exhausted(self, token: TokenState, hop: NextHop) -> bool:
        """True when the traversal should end here: plan complete, dead
        end, or too many consecutive detours (the sector is empty)."""
        return (hop.node_id is None
                or token.consecutive_detours > self.config.max_detours)

    # ------------------------------------------------------------------
    # phase 3: itinerary traversal
    # ------------------------------------------------------------------

    def _send_token(self, node: SensorNode, next_id: int,
                    token: TokenState, first_hop: bool = False) -> None:
        # A dispatching home node has not collected its neighborhood, so
        # the first Q-node must not suppress it as already-covered.
        pos = None if first_hop else node.position()

        def _on_fail(_msg: Message) -> None:
            # The chosen Q-node moved away: evict it and pick another.
            node.forget_neighbor(next_id)
            self._retry_token(node, token)

        node.send(next_id, self.KIND_TOKEN,
                  {"token": token.to_payload(),
                   "prev_pos": (pos.x, pos.y) if pos is not None else None},
                  token.wire_bytes(), on_fail=_on_fail)

    def _retry_token(self, node: SensorNode, token: TokenState) -> None:
        if not node.alive:
            return
        if self.obs is not None:
            self.obs.token_retry(token.query_id, token.sector, node.id,
                                 self.network.sim.now)
        itinerary = token.build_itinerary()
        hop = choose_next_qnode(node.position(), node.neighbors(),
                                itinerary.waypoints, token.waypoint_index,
                                token.width, token.visited,
                                self.config.lookahead,
                                max_reach=self._link_reach)
        self._note_hop(token, hop, node)
        if self._hop_exhausted(token, hop):
            self._note_finish(node, token, hop, itinerary)
            self._send_result_bundle(node, [token])
        else:
            self._send_token(node, hop.node_id, token)

    def _on_token(self, node: SensorNode, message: Message) -> None:
        token = TokenState.from_payload(message.payload["token"])
        prev_raw = message.payload["prev_pos"]
        prev_pos = Vec2(*prev_raw) if prev_raw is not None else None
        token.record_visit(node.id)
        self._qnode_hops[token.query_id] = \
            self._qnode_hops.get(token.query_id, 0) + 1
        now = self.network.sim.now
        if self.obs is not None:
            self.obs.token_hop(token.query_id, token.sector, node.id, now)
        # The Q-node contributes its own response.
        if token.query_id not in self._responded.get(node.id, set()):
            self._mark_responded(node.id, token.query_id)
            token.candidates = self._merge_wire(
                token.candidates, [self._candidate_tuple(node, now)],
                token.point, token.k)
            token.explored += 1
        token.max_speed = max(token.max_speed, node.speed())

        session = _QNodeSession(
            node.id, token.query_id, token.sector, token,
            plan=self._make_plan(node, token.point, token.radius,
                                 prev_pos=prev_pos),
            prev_pos=prev_pos)
        # Merge any rendezvous gossip this node heard earlier.
        cached = self._rdv_cache.get(node.id, {}).get(token.query_id)
        if cached:
            merge_stats(session.gossip, cached)
        self._sessions[(token.query_id, token.sector)] = session
        self._send_probe(node, session, token.point, token.radius)
        session.deadline = self.network.sim.schedule_in(
            session.plan.window_s, lambda: self._advance(node, session))

    def _on_probe(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        if node.id == p["qnode"]:
            return
        query_id = p["query_id"]
        pos = node.position()
        q = Vec2(*p["point"])
        prev_pos = Vec2(*p["prev_pos"]) if p["prev_pos"] else None
        already = query_id in self._responded.get(node.id, set())
        slack = self.config.boundary_slack_factor * self._width
        if not should_reply(pos, q, p["radius"] + slack, prev_pos,
                            self.network.radio.range_m, already):
            return
        qnode_pos = Vec2(*p["qnode_pos"])
        delay = scheme_reply_delay(p.get("scheme", "hybrid"),
                                   p["ref_angle"], p["expected"], p["m"],
                                   p.get("precedence", ()), node.id,
                                   qnode_pos, pos)
        if delay is None:
            return  # token ring: not polled, stay silent
        self._mark_responded(node.id, query_id)
        qnode_id = p["qnode"]
        sector = p["sector"]

        def _reply() -> None:
            if not node.alive:
                return
            now = self.network.sim.now
            cached = self._rdv_cache.get(node.id, {}).get(query_id, {})
            stats_wire = {s: st.to_wire() for s, st in cached.items()}
            node.send(qnode_id, self.KIND_DATA, {
                "query_id": query_id,
                "sector": sector,
                "candidate": self._candidate_tuple(node, now),
                "stats": stats_wire,
            }, self.config.data_base_bytes
               + TokenState.STAT_BYTES * len(stats_wire))

        self.network.sim.schedule_in(delay, _reply)

    def _on_data(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        session = self._sessions.get((p["query_id"], p["sector"]))
        if session is None or session.node_id != node.id:
            return  # window closed or token moved on — reply wasted
        session.replies.append(tuple(p["candidate"]))
        gossip = {int(s): SectorStats.from_wire(w)
                  for s, w in p["stats"].items()}
        merge_stats(session.gossip, gossip)

    def _on_rendezvous(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        query_id = p["query_id"]
        stats = {int(s): SectorStats.from_wire(w)
                 for s, w in p["stats"].items()}
        cache = self._rdv_cache.setdefault(node.id, {}) \
                               .setdefault(query_id, {})
        merge_stats(cache, stats)
        # Live Q-node sessions on this node also absorb the gossip.
        for (qid, _sector), session in self._sessions.items():
            if qid == query_id and session.node_id == node.id:
                merge_stats(session.gossip, stats)

    # ------------------------------------------------------------------
    # Q-node advancement
    # ------------------------------------------------------------------

    def _advance(self, node: SensorNode, session: _QNodeSession) -> None:
        if self._sessions.get((session.query_id, session.sector)) is not session:
            return
        del self._sessions[(session.query_id, session.sector)]
        if not node.alive:
            return
        token = session.token
        cfg = self.config
        now = self.network.sim.now
        pos = node.position()
        q = token.point
        if self.obs is not None:
            self.obs.window_closed(session.query_id, session.sector,
                                   node.id, len(session.replies), now)

        # Fold collected replies into the partial result.
        token.explored += len(session.replies)
        token.candidates = self._merge_wire(token.candidates,
                                            session.replies, q, token.k)
        for cand in session.replies:
            token.max_speed = max(token.max_speed, float(cand[3]))

        # Update own-sector statistics and absorb gossip.
        progress = max(pos.distance_to(q),
                       SectorStats.from_wire(
                           token.stats.get(token.sector, (0, 0.0))
                       ).progress_radius)
        own = SectorStats(explored=token.explored, progress_radius=progress)
        stats = {int(s): SectorStats.from_wire(w)
                 for s, w in token.stats.items()}
        merge_stats(stats, session.gossip)
        stats[token.sector] = own
        token.stats = {s: st.to_wire() for s, st in stats.items()}

        # Rendezvous: near a sector border, gossip our statistics so the
        # adjacent sub-itinerary can pick them up (§4.3).
        if cfg.rendezvous and near_sector_border(pos, q,
                                                 token.sectors_total,
                                                 token.width):
            node.broadcast(self.KIND_RDV, {
                "query_id": token.query_id,
                "stats": dict(token.stats),
            }, cfg.rendezvous_base_bytes
               + TokenState.STAT_BYTES * len(token.stats))

        # Dynamic boundary adjustment from the gossiped global picture.
        if cfg.rendezvous:
            decision = evaluate_boundary(
                stats, token.sectors_total, token.k, token.radius,
                progress_radius=progress,
                extend_cap=self._extend_cap(token.radius_history[0]))
            if decision.action == "stop":
                self._send_result_bundle(node, [token])
                return
            if (decision.action == "extend"
                    and token.boundary_extensions
                    < cfg.max_boundary_extensions):
                token.radius_history.append(decision.new_radius)
                token.boundary_extensions += 1

        self._forward_or_finish(node, token, now)

    def _forward_or_finish(self, node: SensorNode, token: TokenState,
                           now: float) -> None:
        cfg = self.config
        itinerary = token.build_itinerary()
        hop = choose_next_qnode(node.position(), node.neighbors(),
                                itinerary.waypoints, token.waypoint_index,
                                token.width, token.visited, cfg.lookahead,
                                max_reach=self._link_reach)
        if hop.node_id is None and not hop.dead_end \
                and not token.assurance_extended \
                and token.assurance_gain > 0.0 and token.max_speed > 0.0:
            # Mobility assurance (§4.3): the last Q-node expands the
            # boundary by the maximum node displacement seen so far.
            expansion = (token.assurance_gain * (now - token.started_at)
                         * token.max_speed)
            if expansion > token.width / 4.0:
                token.assurance_extended = True
                token.radius_history.append(token.radius + expansion)
                itinerary = token.build_itinerary()
                hop = choose_next_qnode(node.position(), node.neighbors(),
                                        itinerary.waypoints,
                                        token.waypoint_index, token.width,
                                        token.visited, cfg.lookahead,
                                        max_reach=self._link_reach)
        self._note_hop(token, hop, node)
        if self._hop_exhausted(token, hop):
            self._note_finish(node, token, hop, itinerary)
            self._send_result_bundle(node, [token])
        else:
            self._send_token(node, hop.node_id, token)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _send_result_bundle(self, node: SensorNode,
                            tokens: List[TokenState]) -> None:
        first = tokens[0]
        if self.obs is not None:
            self.obs.bundle_sent(first.query_id,
                                 [t.sector for t in tokens], node.id,
                                 self.network.sim.now)
        merged: List[tuple] = []
        for token in tokens:
            merged = self._merge_wire(merged, token.candidates, first.point,
                                      first.k)
        payload = {
            "query_id": first.query_id,
            "sectors": [t.sector for t in tokens],
            "cands": merged,
            "voids": sum(t.voids for t in tokens),
            "explored": sum(t.explored for t in tokens),
            "radius": max(t.radius for t in tokens),
            "ts": first.started_at,
        }
        self._route_result(node, first.sink_pos, first.sink_id, payload,
                           attempt=0)

    def _route_result(self, node: SensorNode, sink_pos: Vec2, sink_id: int,
                      payload: dict, attempt: int) -> None:
        size = (self.config.result_base_bytes
                + TokenState.CANDIDATE_BYTES * len(payload["cands"]))

        def _on_drop(inner: dict, drop_node) -> None:
            # The bundle died en route (mobility): retry from wherever it
            # got to, once neighbor tables have had a beat to refresh.
            if attempt >= self.MAX_ROUTE_RETRIES:
                return
            origin = drop_node if drop_node is not None else node
            if not origin.alive:
                return
            self.network.sim.schedule_in(
                self.RETRY_PAUSE_S,
                lambda: self._route_result(origin, sink_pos, sink_id,
                                           payload, attempt + 1))

        self.router.send(node, sink_pos, self.KIND_RESULT, payload, size,
                         dst_id=sink_id, on_drop=_on_drop)

    # ------------------------------------------------------------------
    # sink-side self-healing: per-sector watchdog + re-dispatch
    # ------------------------------------------------------------------

    def _watchdog_fire(self, query_id: int) -> None:
        """Re-dispatch fresh sub-itinerary tokens into sectors whose
        result bundle never arrived (bounded retries)."""
        wd = self._watchdogs.get(query_id)
        if wd is None or self._is_finalized(query_id):
            return
        result = self._result_of(query_id)
        if result is None:
            return
        sink: SensorNode = wd["sink"]
        missing = sorted(set(range(result.sectors_total))
                         - self._sectors_seen.get(query_id, set()))
        if not missing or not sink.alive \
                or wd["retries"] >= self.config.max_sector_retries:
            return  # healthy, sink dead, or out of retries: let the
                    # runner's timeout finalize the partial result
        wd["retries"] += 1
        self.redispatches += len(missing)
        if self.obs is not None:
            self.obs.requery_dispatched(query_id, missing,
                                        self.network.sim.now)
        self._send_requery(sink, wd["query"], missing, wd["retries"])
        wd["handle"] = self.network.sim.schedule_in(
            self.config.sector_watchdog_s,
            lambda: self._watchdog_fire(query_id))

    def _send_requery(self, sink: SensorNode, query: KNNQuery,
                      sectors: List[int], attempt: int) -> None:
        """Route a sector-restricted re-query toward q.  Like the
        original query it gathers a fresh information list en route, so
        the (possibly different) home node can recompute the KNN boundary
        if the sink has no radius hint yet."""
        result = self._result_of(query.query_id)
        hint = None
        if result is not None and result.meta.get("radius"):
            hint = result.meta["radius"]
        self.router.send(sink, query.point, self.KIND_REQUERY, {
            "query_id": query.query_id,
            "k": query.k,
            "g": query.assurance_gain,
            "point": (query.point.x, query.point.y),
            "sink_id": sink.id,
            "sink_pos": (sink.position().x, sink.position().y),
            "sectors": list(sectors),
            "attempt": attempt,
            "radius_hint": hint,
            "L": {"locs": [], "encs": []},
        }, self.config.requery_base_bytes)

    def _on_requery_delivered(self, node: SensorNode, inner: dict) -> None:
        query_id = inner["query_id"]
        key = (query_id, inner["attempt"])
        if key in self._requeries_seen:
            return
        self._requeries_seen.add(key)
        if self._is_finalized(query_id):
            return
        q = Vec2(*inner["point"])
        radius = inner.get("radius_hint")
        if not radius:
            info = InfoList.from_payload(inner["L"])
            radius = knnb_radius(info, q, self.network.radio.range_m,
                                 inner["k"])
        self._dispatch_sectors(node, query_id, inner, q, radius,
                               sectors=inner["sectors"])

    def _on_result(self, node: SensorNode, inner: dict) -> None:
        query_id = inner["query_id"]
        if self._is_finalized(query_id):
            return  # late bundle after completion/abandon: drop
        result = self._result_of(query_id)
        if result is None:
            return
        if self.obs is not None:
            self.obs.bundle_received(query_id, inner["sectors"],
                                     self.network.sim.now)
        new = [self._from_wire(c) for c in inner["cands"]]
        result.candidates = merge_candidates(
            result.candidates, new, result.query.point,
            cap=max(result.query.k * 4, 64))
        # Idempotent duplicate-bundle suppression: a retried sector that
        # also delivered its original bundle may merge candidates (the
        # merge dedupes by node id) but must not double-count sectors,
        # exploration counters or voids.
        seen = self._sectors_seen.setdefault(query_id, set())
        new_sectors = [s for s in inner["sectors"] if s not in seen]
        if not new_sectors:
            return
        seen.update(new_sectors)
        result.sectors_reported = len(seen)
        meta = result.meta
        meta["voids"] = meta.get("voids", 0.0) + inner["voids"]
        meta["explored"] = meta.get("explored", 0.0) + inner["explored"]
        meta["radius"] = max(meta.get("radius", 0.0), inner["radius"])
        meta["initial_radius"] = self._initial_radius.get(query_id, 0.0)
        meta["qnode_hops"] = float(self._qnode_hops.get(query_id, 0))
        if result.sectors_reported >= result.sectors_total:
            self._complete(query_id)

    def _on_finalize(self, query_id: int) -> None:
        """Cancel the watchdog and drop sink-side sector bookkeeping the
        moment a query completes or is abandoned."""
        wd = self._watchdogs.pop(query_id, None)
        if wd is not None and wd.get("handle") is not None:
            wd["handle"].cancel()
        self._sectors_seen.pop(query_id, None)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def sectors_seen(self, query_id: int) -> frozenset:
        """Sector indices whose result bundle the sink has accounted for
        (read-only; diagnostics and the validation layer)."""
        return frozenset(self._sectors_seen.get(query_id, ()))

    def _mark_responded(self, node_id: int, query_id: int) -> None:
        self._responded.setdefault(node_id, set()).add(query_id)

    @staticmethod
    def _candidate_tuple(node: SensorNode, now: float) -> tuple:
        pos = node.position()
        return (node.id, pos.x, pos.y, node.speed(), node.reading, now)

    @staticmethod
    def _from_wire(data: tuple) -> Candidate:
        return Candidate(node_id=int(data[0]),
                         position=Vec2(float(data[1]), float(data[2])),
                         speed=float(data[3]), reading=float(data[4]),
                         reported_at=float(data[5]))

    @staticmethod
    def _to_wire(cand: Candidate) -> tuple:
        return (cand.node_id, cand.position.x, cand.position.y, cand.speed,
                cand.reading, cand.reported_at)

    @classmethod
    def _merge_wire(cls, existing: List[tuple], new, point: Vec2,
                    cap: int) -> List[tuple]:
        merged = merge_candidates([cls._from_wire(c) for c in existing],
                                  [cls._from_wire(c) for c in new],
                                  point, cap)
        return [cls._to_wire(c) for c in merged]
