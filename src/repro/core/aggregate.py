"""In-network aggregate queries along an itinerary.

The counterpart to shipping candidates around: for questions like "how
many sensors are in this area" or "what is the mean reading there", the
itinerary token carries only a constant-size aggregate state
(count / sum / min / max), updated at each Q-node from the collected
D-node replies.  The result message is a few bytes no matter how large
the region — the classic argument for in-network aggregation, realized
on the same serpentine-itinerary machinery as the window queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..geometry import Rect, Vec2
from ..net.messages import Message
from ..net.node import SensorNode
from .collection import CollectionPlan, reply_delay
from .dissemination import choose_next_qnode
from .itinerary import full_coverage_width
from .window import build_serpentine_itinerary

_agg_ids = itertools.count(1)


@dataclass
class AggregateState:
    """Constant-size running aggregate of sensor readings."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def add(self, reading: float) -> None:
        self.count += 1
        self.total += reading
        self.minimum = (reading if self.minimum is None
                        else min(self.minimum, reading))
        self.maximum = (reading if self.maximum is None
                        else max(self.maximum, reading))

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def to_wire(self) -> tuple:
        return (self.count, self.total, self.minimum, self.maximum)

    @staticmethod
    def from_wire(data: tuple) -> "AggregateState":
        return AggregateState(count=int(data[0]), total=float(data[1]),
                             minimum=data[2], maximum=data[3])

    WIRE_BYTES = 14  # count(2) + three float readings(4 each)


@dataclass(frozen=True)
class AggregateQuery:
    """Aggregate the readings of all nodes inside ``window``."""

    query_id: int
    sink_id: int
    window: Rect
    issued_at: float

    @staticmethod
    def make(sink_id: int, window: Rect,
             issued_at: float) -> "AggregateQuery":
        return AggregateQuery(query_id=next(_agg_ids) + 20_000_000,
                              sink_id=sink_id, window=window,
                              issued_at=issued_at)


@dataclass
class AggregateResult:
    """What the sink receives: the aggregate, never the raw readings."""

    query: AggregateQuery
    state: AggregateState = field(default_factory=AggregateState)
    completed_at: Optional[float] = None
    voids: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.query.issued_at


def true_aggregate(network, window: Rect,
                   t: Optional[float] = None) -> AggregateState:
    """Ground truth aggregate over nodes inside ``window`` at time ``t``."""
    state = AggregateState()
    positions = network.true_positions(t)
    for nid, pos in positions.items():
        if window.contains(pos):
            state.add(network.nodes[nid].reading)
    return state


class _AggSession:
    __slots__ = ("node_id", "query_id", "plan", "replies", "token",
                 "deadline")

    def __init__(self, node_id, query_id, plan, token):
        self.node_id = node_id
        self.query_id = query_id
        self.plan = plan
        self.token = token
        self.replies = []
        self.deadline = None


class AggregateQueryProtocol:
    """Serpentine-itinerary aggregation over a rectangular region."""

    name = "aggregate"

    KIND_QUERY = "agg.query"
    KIND_TOKEN = "agg.token"
    KIND_PROBE = "agg.probe"
    KIND_DATA = "agg.data"
    KIND_RESULT = "agg.result"

    MAX_ROUTE_RETRIES = 2
    RETRY_PAUSE_S = 0.25
    TOKEN_BASE_BYTES = 24

    def __init__(self, width: Optional[float] = None,
                 spacing_factor: float = 0.8,
                 time_unit_s: float = 0.018, max_detours: int = 4):
        self.network = None
        self.router = None
        self.width = width
        self.spacing_factor = spacing_factor
        self.time_unit_s = time_unit_s
        self.max_detours = max_detours
        self._pending: Dict[int, AggregateResult] = {}
        self._callbacks: Dict[int, object] = {}
        self._responded: Dict[int, Set[int]] = {}
        self._sessions: Dict[int, _AggSession] = {}
        self._homes_seen: Set[int] = set()

    # -- lifecycle -----------------------------------------------------------

    def install(self, network, router) -> None:
        self.network = network
        self.router = router
        router.on_deliver(self.KIND_QUERY, self._on_query_delivered)
        router.on_deliver(self.KIND_RESULT, self._on_result)
        network.register_handler(self.KIND_TOKEN, self._on_token)
        network.register_handler(self.KIND_PROBE, self._on_probe)
        network.register_handler(self.KIND_DATA, self._on_data)

    def setup(self) -> None:
        """Infrastructure-free."""

    @property
    def _width(self) -> float:
        if self.width is not None:
            return self.width
        return full_coverage_width(self.network.radio.range_m)

    # -- issue -----------------------------------------------------------------

    def issue(self, sink: SensorNode, query: AggregateQuery,
              on_complete) -> None:
        self._pending[query.query_id] = AggregateResult(query=query)
        self._callbacks[query.query_id] = on_complete
        self._route_query(sink, query, attempt=0)

    def abandon(self, query_id: int) -> Optional[AggregateResult]:
        self._callbacks.pop(query_id, None)
        return self._pending.pop(query_id, None)

    def _route_query(self, sink: SensorNode, query: AggregateQuery,
                     attempt: int) -> None:
        w = query.window
        payload = {"query_id": query.query_id,
                   "window": (w.x_min, w.y_min, w.x_max, w.y_max),
                   "sink_id": sink.id,
                   "sink_pos": (sink.position().x, sink.position().y)}

        def _on_drop(_inner, _node) -> None:
            if attempt >= self.MAX_ROUTE_RETRIES or not sink.alive:
                return
            self.network.sim.schedule_in(
                self.RETRY_PAUSE_S,
                lambda: self._route_query(sink, query, attempt + 1))

        self.router.send(sink, w.center(), self.KIND_QUERY, payload, 20,
                         on_drop=_on_drop)

    # -- traversal ---------------------------------------------------------------

    def _on_query_delivered(self, node: SensorNode, inner: dict) -> None:
        if inner["query_id"] in self._homes_seen:
            return
        self._homes_seen.add(inner["query_id"])
        token = {"query_id": inner["query_id"],
                 "window": inner["window"],
                 "sink_id": inner["sink_id"],
                 "sink_pos": inner["sink_pos"],
                 "wp_idx": 0, "agg": AggregateState().to_wire(),
                 "visited": [], "voids": 0, "detours": 0}
        self._become_qnode(node, token)

    def _become_qnode(self, node: SensorNode, token: dict) -> None:
        query_id = token["query_id"]
        token["visited"] = (token["visited"] + [node.id])[-24:]
        window = Rect(*token["window"])
        agg = AggregateState.from_wire(token["agg"])
        if query_id not in self._responded.get(node.id, set()) and \
                window.contains(node.position()):
            self._responded.setdefault(node.id, set()).add(query_id)
            agg.add(node.reading)
        token["agg"] = agg.to_wire()
        entries = node.neighbors()
        expected = sum(1 for e in entries if window.contains(e.position))
        ref = ((window.center() - node.position()).angle()
               if window.center() != node.position() else 0.0)
        plan = CollectionPlan(reference_angle=ref,
                              expected_responders=expected,
                              time_unit_s=self.time_unit_s)
        session = _AggSession(node.id, query_id, plan, token)
        self._sessions[query_id] = session
        pos = node.position()
        node.broadcast(self.KIND_PROBE, {
            "query_id": query_id, "qnode": node.id,
            "qnode_pos": (pos.x, pos.y), "window": token["window"],
            "ref_angle": ref, "expected": expected,
            "m": self.time_unit_s}, 24)
        session.deadline = self.network.sim.schedule_in(
            plan.window_s, lambda: self._advance(node, session))

    def _on_probe(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        if node.id == p["qnode"]:
            return
        query_id = p["query_id"]
        if query_id in self._responded.get(node.id, set()):
            return
        pos = node.position()
        if not Rect(*p["window"]).contains(pos):
            return
        self._responded.setdefault(node.id, set()).add(query_id)
        delay = reply_delay(p["ref_angle"], p["expected"], p["m"],
                            Vec2(*p["qnode_pos"]), pos)
        qnode = p["qnode"]

        def _reply() -> None:
            if node.alive:
                node.send(qnode, self.KIND_DATA,
                          {"query_id": query_id,
                           "reading": node.reading}, 6)

        self.network.sim.schedule_in(delay, _reply)

    def _on_data(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        session = self._sessions.get(p["query_id"])
        if session is None or session.node_id != node.id:
            return
        session.replies.append(float(p["reading"]))

    def _advance(self, node: SensorNode, session: _AggSession) -> None:
        if self._sessions.get(session.query_id) is not session:
            return
        del self._sessions[session.query_id]
        if not node.alive:
            return
        token = session.token
        agg = AggregateState.from_wire(token["agg"])
        for reading in session.replies:
            agg.add(reading)
        token["agg"] = agg.to_wire()
        waypoints = build_serpentine_itinerary(
            Rect(*token["window"]), self._width,
            self.spacing_factor * self.network.radio.range_m)
        hop = choose_next_qnode(node.position(), node.neighbors(),
                                waypoints, token["wp_idx"], self._width,
                                token["visited"],
                                max_reach=0.9 * self.network.radio.range_m)
        token["wp_idx"] = hop.waypoint_index
        if hop.void_detour:
            token["voids"] += 1
            token["detours"] += 1
        else:
            token["detours"] = 0
        if hop.node_id is None or token["detours"] > self.max_detours:
            self._finish(node, token)
            return

        def _on_fail(_msg: Message) -> None:
            node.forget_neighbor(hop.node_id)
            retry = choose_next_qnode(node.position(), node.neighbors(),
                                      waypoints, token["wp_idx"],
                                      self._width, token["visited"])
            if retry.node_id is None:
                self._finish(node, token)
            else:
                node.send(retry.node_id, self.KIND_TOKEN, dict(token),
                          self.TOKEN_BASE_BYTES
                          + AggregateState.WIRE_BYTES)

        node.send(hop.node_id, self.KIND_TOKEN, dict(token),
                  self.TOKEN_BASE_BYTES + AggregateState.WIRE_BYTES,
                  on_fail=_on_fail)

    def _on_token(self, node: SensorNode, message: Message) -> None:
        self._become_qnode(node, dict(message.payload))

    # -- results ------------------------------------------------------------------

    def _finish(self, node: SensorNode, token: dict,
                attempt: int = 0) -> None:
        payload = {"query_id": token["query_id"], "agg": token["agg"],
                   "voids": token["voids"]}

        def _on_drop(_inner, drop_node) -> None:
            if attempt >= self.MAX_ROUTE_RETRIES:
                return
            origin = drop_node if drop_node is not None else node
            if origin.alive:
                self.network.sim.schedule_in(
                    self.RETRY_PAUSE_S,
                    lambda: self._finish(origin, token, attempt + 1))

        self.router.send(node, Vec2(*token["sink_pos"]), self.KIND_RESULT,
                         payload, 16 + AggregateState.WIRE_BYTES,
                         dst_id=token["sink_id"], on_drop=_on_drop)

    def _on_result(self, node: SensorNode, inner: dict) -> None:
        result = self._pending.pop(inner["query_id"], None)
        callback = self._callbacks.pop(inner["query_id"], None)
        if result is None:
            return
        result.state = AggregateState.from_wire(inner["agg"])
        result.voids = inner["voids"]
        result.completed_at = self.network.sim.now
        if callback is not None:
            callback(result)
