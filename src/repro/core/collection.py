"""Data collection scheduling at a Q-node (paper §3.3 and footnote 1).

When a Q-node broadcasts a probe, the D-nodes hearing it must reply
without colliding.  The paper discusses three schemes (footnote 1 credits
the best performance to a combination of the first two):

* ``"contention"`` — each D-node sets a timer proportional to the angle
  ``alpha`` between the probe's reference line and its own bearing from
  the Q-node, scaled by the expected responder count and the per-response
  time unit ``m`` (0.018 s, §5.1).  Purely receiver-driven; works for
  nodes the Q-node has never heard of, but spreads replies over the full
  window even when few nodes respond.
* ``"token_ring"`` — the probe carries a precedence list (the Q-node's
  neighbor table, angle-ordered); listed D-node *i* replies in slot
  ``i*m``.  Tight packing, but nodes absent from the Q-node's table are
  never polled and stay silent.
* ``"hybrid"`` (default) — the contention timers plus the previous-Q-node
  suppression rule: nodes within radio range of the previous Q-node have
  already been collected and stay silent, which shrinks the expected
  responder count and with it the window.

All schemes close the Q-node's collection window after the largest
possible timer plus slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..geometry import TWO_PI, Vec2, normalize_angle

DEFAULT_TIME_UNIT_S = 0.018

SCHEMES = ("contention", "token_ring", "hybrid")


@dataclass(frozen=True)
class CollectionPlan:
    """What a Q-node advertises in its probe."""

    reference_angle: float   # reference line emanating from the Q-node
    expected_responders: int
    time_unit_s: float = DEFAULT_TIME_UNIT_S
    slack_units: float = 2.0
    scheme: str = "hybrid"
    #: token-ring precedence list: node ids in reply order
    precedence: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown collection scheme {self.scheme!r}; "
                             f"choose from {SCHEMES}")

    @property
    def window_s(self) -> float:
        """How long the Q-node listens before advancing."""
        if self.scheme == "token_ring":
            return (len(self.precedence)
                    + self.slack_units) * self.time_unit_s
        return (self.expected_responders
                + self.slack_units) * self.time_unit_s

    def wire_bytes(self, base: int, per_precedence_entry: int = 2) -> int:
        """Probe size: token-ring probes carry the precedence list."""
        if self.scheme == "token_ring":
            return base + per_precedence_entry * len(self.precedence)
        return base


def build_precedence(qnode_pos: Vec2, reference_angle: float,
                     neighbor_entries: Sequence) -> Tuple[int, ...]:
    """Angle-ordered polling list for the token-ring scheme."""
    def key(entry):
        offset = entry.position - qnode_pos
        if offset.norm_sq() == 0.0:
            return 0.0
        return normalize_angle(offset.angle() - reference_angle)

    return tuple(e.node_id for e in sorted(neighbor_entries, key=key))


def reply_delay(plan_ref_angle: float, expected: int, time_unit_s: float,
                qnode_pos: Vec2, dnode_pos: Vec2) -> float:
    """The D-node's contention timer.

    ``timer = (alpha / 2*pi) * expected * m`` where ``alpha`` is the CCW
    angle from the reference line to the Q-node→D-node bearing.  Colocated
    nodes get a zero-angle fallback jitterless slot (the MAC's backoff
    still separates them).
    """
    if expected <= 0:
        return 0.0
    offset = dnode_pos - qnode_pos
    if offset.norm_sq() == 0.0:
        alpha = 0.0
    else:
        alpha = normalize_angle(offset.angle() - plan_ref_angle)
    return (alpha / TWO_PI) * expected * time_unit_s


def token_ring_delay(precedence: Sequence[int], node_id: int,
                     time_unit_s: float) -> Optional[float]:
    """The D-node's polling slot, or None when it was not polled."""
    try:
        rank = list(precedence).index(node_id)
    except ValueError:
        return None
    return rank * time_unit_s


def scheme_reply_delay(plan_scheme: str, plan_ref_angle: float,
                       expected: int, time_unit_s: float,
                       precedence: Sequence[int], node_id: int,
                       qnode_pos: Vec2, dnode_pos: Vec2) -> Optional[float]:
    """Reply delay under the probe's scheme; None means "stay silent"."""
    if plan_scheme == "token_ring":
        return token_ring_delay(precedence, node_id, time_unit_s)
    return reply_delay(plan_ref_angle, expected, time_unit_s, qnode_pos,
                       dnode_pos)


def expected_new_responders(neighbor_positions, boundary_center: Vec2,
                            boundary_radius: float,
                            prev_qnode: Optional[Vec2],
                            radio_range: float) -> int:
    """Estimate of how many neighbors will answer a probe: inside the KNN
    boundary and not already covered by the previous Q-node's probe."""
    r_sq = radio_range * radio_range
    b_sq = boundary_radius * boundary_radius
    count = 0
    for pos in neighbor_positions:
        if pos.distance_sq_to(boundary_center) > b_sq:
            continue
        if prev_qnode is not None and pos.distance_sq_to(prev_qnode) <= r_sq:
            continue
        count += 1
    return count


def should_reply(dnode_pos: Vec2, boundary_center: Vec2,
                 boundary_radius: float, prev_qnode: Optional[Vec2],
                 radio_range: float, already_responded: bool) -> bool:
    """D-node qualification check (mirrors the Q-node's estimate)."""
    if already_responded:
        return False
    if dnode_pos.distance_to(boundary_center) > boundary_radius:
        return False
    if (prev_qnode is not None
            and dnode_pos.distance_to(prev_qnode) <= radio_range):
        return False
    return True
