"""Itinerary-based window (range) queries.

The paper's itinerary machinery descends from Xu et al.'s window-query
work ([31], ICDE 2006), the only prior infrastructure-free spatial query
technique it cites.  This module provides that sibling protocol on the
same substrate: report every node inside a rectangle, collected along a
single serpentine itinerary that sweeps the window in strips of the
itinerary width w.

Included both as a useful query primitive in its own right and as the
degenerate-parallelism reference point for DIKNN's sectored itineraries.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..geometry import Rect, Vec2
from ..net.messages import Message
from ..net.node import SensorNode
from ..sim.engine import EventHandle
from .base import QueryProtocol
from .collection import (CollectionPlan,
                         reply_delay)
from .dissemination import choose_next_qnode
from .itinerary import full_coverage_width
from .query import Candidate

_window_ids = itertools.count(1)


def build_serpentine_itinerary(window: Rect, width: float,
                               spacing: float) -> List[Vec2]:
    """Waypoints sweeping ``window`` in horizontal strips spaced ``width``.

    The first strip runs w/2 above the bottom edge so the whole window is
    within w/2 of the path; strips alternate direction (boustrophedon).
    """
    if width <= 0 or spacing <= 0:
        raise ValueError("width and spacing must be positive")
    waypoints: List[Vec2] = []
    y = window.y_min + width / 2.0
    leftward = False
    while y - width / 2.0 < window.y_max - 1e-9:
        yy = min(y, window.y_max)
        n = max(2, int(math.ceil(window.width / spacing)) + 1)
        xs = [window.x_min + window.width * i / (n - 1) for i in range(n)]
        if leftward:
            xs.reverse()
        for x in xs:
            p = Vec2(x, yy)
            if not waypoints or waypoints[-1].distance_to(p) > 1e-9:
                waypoints.append(p)
        leftward = not leftward
        y += width
    return waypoints


@dataclass(frozen=True)
class WindowQuery:
    """Report all nodes inside ``window`` as of execution time."""

    query_id: int
    sink_id: int
    window: Rect
    issued_at: float

    @staticmethod
    def make(sink_id: int, window: Rect, issued_at: float) -> "WindowQuery":
        return WindowQuery(query_id=next(_window_ids) + 10_000_000,
                           sink_id=sink_id, window=window,
                           issued_at=issued_at)


@dataclass
class WindowResult:
    """What the sink receives for a window query."""

    query: WindowQuery
    candidates: List[Candidate] = field(default_factory=list)
    completed_at: Optional[float] = None
    voids: int = 0

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.query.issued_at

    def node_ids(self) -> List[int]:
        return sorted({c.node_id for c in self.candidates})


def nodes_in_window(network, window: Rect,
                    t: Optional[float] = None) -> List[int]:
    """Ground truth: ids of nodes truly inside ``window`` at time ``t``."""
    return sorted(nid for nid, pos in network.true_positions(t).items()
                  if window.contains(pos))


def window_recall(network, result: WindowResult,
                  t: Optional[float] = None) -> float:
    """|returned ∩ truth| / |truth| at time ``t`` (default: issue time)."""
    time = t if t is not None else result.query.issued_at
    truth = set(nodes_in_window(network, result.query.window, time))
    if not truth:
        return 1.0 if not result.node_ids() else 0.0
    return len(truth & set(result.node_ids())) / len(truth)


class _WindowSession:
    __slots__ = ("node_id", "query_id", "plan", "replies", "deadline",
                 "token")

    def __init__(self, node_id: int, query_id: int, plan: CollectionPlan,
                 token: dict):
        self.node_id = node_id
        self.query_id = query_id
        self.plan = plan
        self.token = token
        self.replies: List[tuple] = []
        self.deadline: Optional[EventHandle] = None


class WindowQueryProtocol:
    """Single-itinerary window query processing (after [31])."""

    name = "window"

    KIND_QUERY = "wq.query"
    KIND_TOKEN = "wq.token"
    KIND_PROBE = "wq.probe"
    KIND_DATA = "wq.data"
    KIND_RESULT = "wq.result"

    MAX_ROUTE_RETRIES = 2
    RETRY_PAUSE_S = 0.25

    def __init__(self, width: Optional[float] = None,
                 spacing_factor: float = 0.8,
                 time_unit_s: float = 0.018,
                 max_detours: int = 4,
                 max_report: int = 256):
        self.network = None
        self.router = None
        self.width = width
        self.spacing_factor = spacing_factor
        self.time_unit_s = time_unit_s
        self.max_detours = max_detours
        self.max_report = max_report
        self._pending: Dict[int, WindowResult] = {}
        self._callbacks: Dict[int, object] = {}
        self._responded: Dict[int, Set[int]] = {}
        self._sessions: Dict[int, _WindowSession] = {}
        self._homes_seen: Set[int] = set()

    # -- lifecycle ---------------------------------------------------------

    def install(self, network, router) -> None:
        self.network = network
        self.router = router
        router.on_deliver(self.KIND_QUERY, self._on_query_delivered)
        router.on_deliver(self.KIND_RESULT, self._on_result)
        network.register_handler(self.KIND_TOKEN, self._on_token)
        network.register_handler(self.KIND_PROBE, self._on_probe)
        network.register_handler(self.KIND_DATA, self._on_data)

    def setup(self) -> None:
        """Infrastructure-free: nothing to build."""

    @property
    def _width(self) -> float:
        if self.width is not None:
            return self.width
        return full_coverage_width(self.network.radio.range_m)

    @property
    def _spacing(self) -> float:
        return self.spacing_factor * self.network.radio.range_m

    # -- issue -------------------------------------------------------------

    def issue(self, sink: SensorNode, query: WindowQuery,
              on_complete) -> None:
        result = WindowResult(query=query)
        self._pending[query.query_id] = result
        self._callbacks[query.query_id] = on_complete
        self._route_query(sink, query, attempt=0)

    def abandon(self, query_id: int) -> Optional[WindowResult]:
        self._callbacks.pop(query_id, None)
        return self._pending.pop(query_id, None)

    def _route_query(self, sink: SensorNode, query: WindowQuery,
                     attempt: int) -> None:
        w = query.window
        payload = {
            "query_id": query.query_id,
            "window": (w.x_min, w.y_min, w.x_max, w.y_max),
            "sink_id": sink.id,
            "sink_pos": (sink.position().x, sink.position().y),
        }

        def _on_drop(_inner, _node) -> None:
            if attempt >= self.MAX_ROUTE_RETRIES or not sink.alive:
                return
            self.network.sim.schedule_in(
                self.RETRY_PAUSE_S,
                lambda: self._route_query(sink, query, attempt + 1))

        self.router.send(sink, w.center(), self.KIND_QUERY, payload, 20,
                         on_drop=_on_drop)

    # -- traversal ---------------------------------------------------------

    def _on_query_delivered(self, node: SensorNode, inner: dict) -> None:
        query_id = inner["query_id"]
        if query_id in self._homes_seen:
            return
        self._homes_seen.add(query_id)
        token = {
            "query_id": query_id,
            "window": inner["window"],
            "sink_id": inner["sink_id"],
            "sink_pos": inner["sink_pos"],
            "wp_idx": 0,
            "cands": [],
            "visited": [],
            "voids": 0,
            "detours": 0,
        }
        self._become_qnode(node, token)

    def _window_of(self, token: dict) -> Rect:
        return Rect(*token["window"])

    def _become_qnode(self, node: SensorNode, token: dict) -> None:
        query_id = token["query_id"]
        token["visited"] = (token["visited"] + [node.id])[-24:]
        window = self._window_of(token)
        if query_id not in self._responded.get(node.id, set()) and \
                window.contains(node.position()):
            self._responded.setdefault(node.id, set()).add(query_id)
            token["cands"].append(self._candidate(node))
        plan = self._make_plan(node, window)
        session = _WindowSession(node.id, query_id, plan, token)
        self._sessions[query_id] = session
        pos = node.position()
        node.broadcast(self.KIND_PROBE, {
            "query_id": query_id,
            "qnode": node.id,
            "qnode_pos": (pos.x, pos.y),
            "window": token["window"],
            "ref_angle": plan.reference_angle,
            "expected": plan.expected_responders,
            "m": plan.time_unit_s,
        }, 24)
        session.deadline = self.network.sim.schedule_in(
            plan.window_s, lambda: self._advance(node, session))

    def _make_plan(self, node: SensorNode, window: Rect) -> CollectionPlan:
        entries = node.neighbors()
        expected = sum(1 for e in entries if window.contains(e.position))
        ref = (window.center() - node.position()).angle() \
            if window.center() != node.position() else 0.0
        return CollectionPlan(reference_angle=ref,
                              expected_responders=expected,
                              time_unit_s=self.time_unit_s)

    def _on_probe(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        if node.id == p["qnode"]:
            return
        query_id = p["query_id"]
        if query_id in self._responded.get(node.id, set()):
            return
        pos = node.position()
        if not Rect(*p["window"]).contains(pos):
            return
        self._responded.setdefault(node.id, set()).add(query_id)
        delay = reply_delay(p["ref_angle"], p["expected"], p["m"],
                            Vec2(*p["qnode_pos"]), pos)
        qnode = p["qnode"]

        def _reply() -> None:
            if node.alive:
                node.send(qnode, self.KIND_DATA, {
                    "query_id": query_id,
                    "candidate": self._candidate(node),
                }, 10)

        self.network.sim.schedule_in(delay, _reply)

    def _on_data(self, node: SensorNode, message: Message) -> None:
        p = message.payload
        session = self._sessions.get(p["query_id"])
        if session is None or session.node_id != node.id:
            return
        session.replies.append(tuple(p["candidate"]))

    def _advance(self, node: SensorNode, session: _WindowSession) -> None:
        if self._sessions.get(session.query_id) is not session:
            return
        del self._sessions[session.query_id]
        if not node.alive:
            return
        token = session.token
        token["cands"] = (token["cands"]
                          + [list(c) for c in session.replies])
        if len(token["cands"]) > self.max_report:
            token["cands"] = token["cands"][:self.max_report]
        waypoints = build_serpentine_itinerary(self._window_of(token),
                                               self._width, self._spacing)
        hop = choose_next_qnode(node.position(), node.neighbors(),
                                waypoints, token["wp_idx"], self._width,
                                token["visited"],
                                max_reach=0.9 * self.network.radio.range_m)
        token["wp_idx"] = hop.waypoint_index
        if hop.void_detour:
            token["voids"] += 1
            token["detours"] += 1
        else:
            token["detours"] = 0
        if hop.node_id is None or token["detours"] > self.max_detours:
            self._finish(node, token)
            return
        size = 24 + 10 * len(token["cands"]) + 2 * len(token["visited"])

        def _on_fail(_msg: Message) -> None:
            node.forget_neighbor(hop.node_id)
            retry = choose_next_qnode(
                node.position(), node.neighbors(), waypoints,
                token["wp_idx"], self._width, token["visited"])
            if retry.node_id is None:
                self._finish(node, token)
            else:
                node.send(retry.node_id, self.KIND_TOKEN, dict(token),
                          size)

        node.send(hop.node_id, self.KIND_TOKEN, dict(token), size,
                  on_fail=_on_fail)

    def _on_token(self, node: SensorNode, message: Message) -> None:
        self._become_qnode(node, dict(message.payload))

    # -- results -----------------------------------------------------------

    def _finish(self, node: SensorNode, token: dict,
                attempt: int = 0) -> None:
        payload = {
            "query_id": token["query_id"],
            "cands": token["cands"],
            "voids": token["voids"],
        }
        size = 16 + 10 * len(token["cands"])

        def _on_drop(_inner, drop_node) -> None:
            if attempt >= self.MAX_ROUTE_RETRIES:
                return
            origin = drop_node if drop_node is not None else node
            if origin.alive:
                self.network.sim.schedule_in(
                    self.RETRY_PAUSE_S,
                    lambda: self._finish(origin, token, attempt + 1))

        self.router.send(node, Vec2(*token["sink_pos"]), self.KIND_RESULT,
                         payload, size, dst_id=token["sink_id"],
                         on_drop=_on_drop)

    def _on_result(self, node: SensorNode, inner: dict) -> None:
        result = self._pending.pop(inner["query_id"], None)
        callback = self._callbacks.pop(inner["query_id"], None)
        if result is None:
            return
        for c in inner["cands"]:
            result.candidates.append(Candidate(
                node_id=int(c[0]), position=Vec2(float(c[1]), float(c[2])),
                speed=float(c[3]), reading=float(c[4]),
                reported_at=float(c[5])))
        result.voids = inner["voids"]
        result.completed_at = self.network.sim.now
        if callback is not None:
            callback(result)

    @staticmethod
    def _candidate(node: SensorNode) -> list:
        pos = node.position()
        now = node.network.sim.now
        return [node.id, pos.x, pos.y, node.speed(), node.reading, now]
