"""KNNB: linear-time KNN boundary estimation (paper §4, Algorithm 1).

During the routing phase each hop appends its location and the number of
*newly encountered* neighbors to an information list ``L``.  The home node
then walks ``L`` from the tail, growing a density sample (rectangle strip
approximation of the covered area, Figure 5) until the extrapolated node
count inside the circle of radius ``DIST(loc_i, q)`` reaches ``k``; that
distance is the boundary radius ``R``.

Also provided: the conservative boundary of the original KPT [29, 30]
(quadratic in k) used by ablation E11, and the density-based extrapolation
fallback for when even the full list underestimates ``k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..geometry import Vec2


@dataclass
class InfoList:
    """The per-hop information list ``L`` of the routing phase.

    ``locs[i]`` is the location of the node triggering hop ``i``;
    ``encs[i]`` the count of neighbors newly encountered at that hop
    (distance > r from the previous hop's node, §4.1).
    """

    locs: List[Vec2] = field(default_factory=list)
    encs: List[int] = field(default_factory=list)

    ENTRY_BYTES = 6  # quantized (x, y, enc) on the wire

    def append(self, loc: Vec2, enc: int) -> None:
        self.locs.append(loc)
        self.encs.append(enc)

    def __len__(self) -> int:
        return len(self.locs)

    @property
    def wire_bytes(self) -> int:
        return len(self.locs) * self.ENTRY_BYTES

    def to_payload(self) -> dict:
        """Serializable form carried inside the routed query message."""
        return {"locs": [(p.x, p.y) for p in self.locs],
                "encs": list(self.encs)}

    @staticmethod
    def from_payload(data: dict) -> "InfoList":
        info = InfoList()
        for (x, y), enc in zip(data["locs"], data["encs"]):
            info.append(Vec2(x, y), int(enc))
        return info


def count_new_neighbors(neighbor_positions: List[Vec2],
                        previous_hop: Optional[Vec2], radius: float) -> int:
    """``enc_i``: neighbors farther than ``radius`` from the previous hop's
    node (so their counts were not already reported), §4.1."""
    if previous_hop is None:
        return len(neighbor_positions)
    r_sq = radius * radius
    return sum(1 for p in neighbor_positions
               if p.distance_sq_to(previous_hop) > r_sq)


def knnb_radius(info: InfoList, q: Vec2, r: float, k: int,
                min_radius: Optional[float] = None,
                max_radius: Optional[float] = None) -> float:
    """Algorithm 1: estimate the KNN boundary radius.

    Args:
        info: list ``L`` gathered during the routing phase.
        q: the query point.
        r: radio range of a sensor node.
        k: requested neighbor count.
        min_radius: floor on the returned radius (default ``r``): a boundary
            smaller than one radio range cannot be traversed meaningfully.
        max_radius: optional cap (e.g. the field diagonal).

    Returns:
        Radius ``R`` of the estimated KNN boundary.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if min_radius is None:
        min_radius = r
    floor_val = min_radius

    def _bounded(value: float) -> float:
        value = max(value, floor_val)
        if max_radius is not None:
            value = min(value, max_radius)
        return value

    if len(info) == 0:
        # No route information (sink adjacent to q): fall back to a circle
        # sized for k nodes at nominal density 1 node per pi*r^2/4.
        return _bounded(r * math.sqrt(max(k, 1)) / 2.0)

    i = len(info) - 1
    neighbors = info.encs[i]
    approx_area = math.pi * r * r / 2.0  # the semicircle A_p at the home node
    last_d = 0.0
    last_est = 0.0
    while i >= 0:
        d = info.locs[i].distance_to(q)
        est_k = math.pi * d * d * (neighbors / approx_area)
        if est_k >= k:
            return _bounded(d)
        last_d, last_est = d, est_k
        if i == 0:
            break
        neighbors += info.encs[i - 1]
        approx_area += r * info.locs[i].distance_to(info.locs[i - 1])
        i -= 1
    # The whole list never reached k: extrapolate from the final density
    # sample (uniform-density inversion of Eq. 1): R = sqrt(k / (pi * D)).
    density = neighbors / approx_area
    if density <= 0.0:
        return _bounded(max(last_d, r) * math.sqrt(k))
    return _bounded(math.sqrt(k / (math.pi * density)))


def conservative_radius(k: int, max_hop_distance: float) -> float:
    """The original KPT conservative boundary (§5.1 discussion).

    KPT's estimate grows as ``k * MHD`` — for k=20, MHD=15 the paper notes
    R = 300 m, six times the network; this is what makes unmodified KPT
    flood the field and motivates simulating KPT with KNNB instead.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if max_hop_distance <= 0:
        raise ValueError("max hop distance must be positive")
    return k * max_hop_distance


def optimal_radius(density: float, k: int) -> float:
    """Radius of the *optimal* boundary for uniform density (analysis aid):
    the circle around q expected to contain exactly k nodes."""
    if density <= 0:
        raise ValueError("density must be positive")
    return math.sqrt(k / (math.pi * density))
