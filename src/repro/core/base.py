"""Common interface all KNN query protocols implement.

The experiment runner is protocol-agnostic: it installs a protocol on a
network, issues queries from arbitrary sink nodes, and consumes
:class:`~repro.core.query.QueryResult` objects via a completion callback.
DIKNN, KPT, Peer-tree and flooding all implement this interface.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Set

from .query import KNNQuery, QueryResult
from ..net.network import Network
from ..net.node import SensorNode
from ..routing.base import Router

CompletionFn = Callable[[QueryResult], None]


class QueryProtocol(abc.ABC):
    """A KNN query processing protocol."""

    #: short name used in experiment tables
    name: str = "abstract"

    def __init__(self) -> None:
        self.network: Optional[Network] = None
        self.router: Optional[Router] = None
        self._pending: Dict[int, QueryResult] = {}
        self._callbacks: Dict[int, CompletionFn] = {}
        self._finalized: Set[int] = set()
        #: optional telemetry sink (repro.obs.Telemetry).  Protocols emit
        #: lifecycle events through it behind ``if self.obs is not None``
        #: guards, so an uninstrumented run pays one attribute check.
        self.obs = None

    # -- lifecycle -------------------------------------------------------

    def install(self, network: Network, router: Router) -> None:
        """Attach to a network: register message handlers."""
        self.network = network
        self.router = router
        self._install_handlers()

    @abc.abstractmethod
    def _install_handlers(self) -> None:
        """Register protocol message kinds on the network/router."""

    def setup(self) -> None:
        """Build any long-lived structures (indexes, clusterheads).

        Called once after network warm-up; infrastructure-free protocols
        need not override.
        """

    # -- querying ----------------------------------------------------------

    @abc.abstractmethod
    def issue(self, sink: SensorNode, query: KNNQuery,
              on_complete: CompletionFn) -> None:
        """Issue ``query`` from ``sink``; ``on_complete`` fires at most once
        when the result returns to the sink."""

    # -- shared bookkeeping ---------------------------------------------------

    def _register_query(self, query: KNNQuery, sectors_total: int,
                        on_complete: CompletionFn) -> QueryResult:
        result = QueryResult(query=query, sectors_total=sectors_total)
        self._pending[query.query_id] = result
        self._callbacks[query.query_id] = on_complete
        return result

    def _result_of(self, query_id: int) -> Optional[QueryResult]:
        return self._pending.get(query_id)

    def _complete(self, query_id: int) -> None:
        result = self._pending.pop(query_id, None)
        callback = self._callbacks.pop(query_id, None)
        if result is None:
            return
        self._finalized.add(query_id)
        self._on_finalize(query_id)
        result.completed_at = self.network.sim.now
        if self.obs is not None:
            self.obs.query_finalized(query_id, completed=True,
                                     at=self.network.sim.now)
        if callback is not None:
            callback(result)

    def abandon(self, query_id: int) -> Optional[QueryResult]:
        """Give up on a query (runner timeout); returns the partial result.

        The query id is marked finalized: any protocol message still in
        flight for it (a late sector bundle, a watchdog retry) must be
        ignored on arrival rather than raise or mutate the delivered
        partial result.
        """
        self._callbacks.pop(query_id, None)
        result = self._pending.pop(query_id, None)
        if result is not None:
            self._finalized.add(query_id)
            self._on_finalize(query_id)
            if self.obs is not None:
                self.obs.query_finalized(query_id, completed=False,
                                         at=self.network.sim.now)
        return result

    def _is_finalized(self, query_id: int) -> bool:
        """True once the query completed or was abandoned; late traffic
        for it must be dropped."""
        return query_id in self._finalized

    def _on_finalize(self, query_id: int) -> None:
        """Hook for protocols to cancel per-query timers/state when a
        query completes or is abandoned."""
