"""The telemetry hub: one object wiring spans, metrics, raw events and
the kernel profiler to a running simulation.

``Telemetry`` is opt-in and zero-cost when off: every hook point in the
substrate (simulator, MAC, router, protocol, itinerary builder) is a
``None``-guarded attribute, so an unattached run pays one comparison per
event.  All attached callbacks are *pure observers* — they never draw
randomness, schedule events or mutate simulation state — so an
instrumented run is bit-identical to an uninstrumented one (the
golden-trace determinism suite enforces this).

Enable per-process with :func:`enable_observability` (the CLI's ``--obs``
flag); ``build_simulation`` then attaches a ``Telemetry`` to every handle
it constructs, exactly like ``repro.validate``'s ``--validate``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import TraceLog
from .metrics import MetricsRegistry
from .profiler import KernelProfiler
from .sampling import SAMPLING_STREAM, SamplingPolicy, TailSampler
from .spans import SpanTracker


class Telemetry:
    """Telemetry state of one simulation run.

    ``sample_every_n > 0`` switches the hub into the scale-aware
    *sampled* tier: spans and per-query histogram observations are
    staged by a :class:`~repro.obs.sampling.TailSampler` and only kept
    for failed/flagged queries plus a deterministic 1-in-N of the
    COMPLETE ones.  The sampler draws exclusively from the dedicated
    ``obs.sampling`` stream, so enabling it never perturbs simulation
    randomness.
    """

    def __init__(self, profile_kernel: bool = True,
                 trace_events: bool = True, sample_every_n: int = 0,
                 max_staged: int = 10_000):
        self.metrics = MetricsRegistry()
        self.spans = SpanTracker()
        self.profiler: Optional[KernelProfiler] = (
            KernelProfiler() if profile_kernel else None)
        self.events: Optional[TraceLog] = None
        self.sampler: Optional[TailSampler] = None
        self._trace_events = trace_events
        self._sample_every_n = sample_every_n
        self._max_staged = max_staged
        self._sim = None
        self._network = None
        self._router = None
        self._protocol = None
        self._prev_ledger_observer = None
        self._finalized = False
        # span bookkeeping: open span ids by role
        self._root: Dict[int, int] = {}
        self._route: Dict[int, int] = {}
        self._sector: Dict[Tuple[int, int], int] = {}
        self._window: Dict[Tuple[int, int], int] = {}
        self._return: Dict[Tuple[int, frozenset], int] = {}
        self._energy0: Dict[int, float] = {}
        self._issued_at: Dict[int, float] = {}
        # geometric query point per query id, kept so home_reached can
        # report the anchor displacement (declared home vs. target)
        self._qpoint: Dict[int, Tuple[float, float]] = {}
        # Hot-path observer caches: the MAC/ledger/beacon hooks fire per
        # frame sample / charge / delivery batch, so the metric objects
        # are resolved once instead of a registry lookup per call.
        self._beacons_delivered = self.metrics.counter(
            "net.beacons.delivered")
        self._mac_hists: Dict[str, object] = {}
        self._charge_counters: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._sim is not None

    def attach(self, sim, network, protocol=None, router=None) -> None:
        """Install observation hooks on a built simulation."""
        if self._sim is not None:
            raise RuntimeError("telemetry is already attached")
        self._sim = sim
        self._network = network
        self._router = router
        self._protocol = protocol
        if self._trace_events:
            self.events = TraceLog(network)
        if self.profiler is not None:
            self.profiler.install(sim)
        if self._sample_every_n > 0 and self.sampler is None:
            self.sampler = TailSampler(
                SamplingPolicy(sample_every_n=self._sample_every_n,
                               max_staged=self._max_staged),
                sim.rng.stream(SAMPLING_STREAM), self.metrics,
                self.spans)
        network.add_beacon_batch_hook(self._on_beacon_batch)
        network.mac.obs_hook = self._on_mac
        # Chain behind any observer the validation layer installed.
        self._prev_ledger_observer = network.ledger.observer
        network.ledger.observer = self._on_charge
        if router is not None:
            router.obs = self
        if protocol is not None:
            protocol.obs = self
        from ..core import itinerary
        itinerary.set_build_observer(self._on_itinerary_build)

    def attach_handle(self, handle) -> None:
        """Attach to a :class:`~repro.experiments.config.SimulationHandle`."""
        self.attach(handle.sim, handle.network,
                    protocol=handle.protocol, router=handle.router)

    def detach(self) -> None:
        """Remove every installed hook (idempotent)."""
        if self._sim is None:
            return
        if self.events is not None:
            self.events.detach()
        if self.profiler is not None:
            self.profiler.uninstall()
        # Bound methods are recreated per attribute access, so these
        # slots compare with == (method equality), never ``is``.
        hooks = self._network._beacon_batch_hooks
        if self._on_beacon_batch in hooks:
            hooks.remove(self._on_beacon_batch)
        if self._network.mac.obs_hook == self._on_mac:
            self._network.mac.obs_hook = None
        if self._network.ledger.observer == self._on_charge:
            self._network.ledger.observer = self._prev_ledger_observer
        if self._router is not None and self._router.obs is self:
            self._router.obs = None
        if self._protocol is not None and self._protocol.obs is self:
            self._protocol.obs = None
        from ..core import itinerary
        if itinerary._build_observer == self._on_itinerary_build:
            itinerary.set_build_observer(None)
        self._sim = None

    def finalize(self) -> None:
        """End-of-run sweep: snapshot substrate counters into gauges and
        close any span the protocol never got to (node death, timeout
        after ``abandon`` was skipped).  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        now = self._sim.now if self._sim is not None else 0.0
        for span in self.spans.open_spans():
            self.spans.end(span.span_id, at=max(now, span.start),
                           status="unfinished")
        if self._network is None:
            return
        mac = self._network.mac.stats
        # Losses are counted per receiver; a broadcast frame can lose at
        # several receivers at once, so normalize by receive attempts.
        attempts = (mac.frames_delivered + mac.frames_lost_channel
                    + mac.frames_lost_collision)
        gauges = {
            "mac.frames_sent": mac.frames_sent,
            "mac.frames_delivered": mac.frames_delivered,
            "mac.frames_lost_channel": mac.frames_lost_channel,
            "mac.frames_lost_collision": mac.frames_lost_collision,
            "mac.unicast_retries": mac.unicast_retries,
            "mac.unicast_failures": mac.unicast_failures,
            "mac.collision_rate": (mac.frames_lost_collision / attempts
                                   if attempts else 0.0),
            "net.messages_sent": self._network.stats.messages_sent,
            "net.deliveries": self._network.stats.deliveries,
            "net.beacons_sent": self._network.stats.beacons_sent,
            "energy.total_j": self._network.ledger.total_j(),
            "energy.beacon_total_j":
                self._network.beacon_ledger.total_j(),
        }
        for name, value in gauges.items():
            self.metrics.gauge(name).set(float(value))

    # ------------------------------------------------------------------
    # substrate observers
    # ------------------------------------------------------------------

    def _on_beacon_batch(self, count: int) -> None:
        self._beacons_delivered.inc(count)

    def _on_mac(self, kind: str, value: float) -> None:
        hist = self._mac_hists.get(kind)
        if hist is None:
            hist = self._mac_hists[kind] = \
                self.metrics.histogram(f"mac.{kind}")
        hist.observe(value)

    def _on_charge(self, node_id: int, kind: str, cost: float) -> None:
        counter = self._charge_counters.get(kind)
        if counter is None:
            counter = self._charge_counters[kind] = \
                self.metrics.counter(f"energy.{kind}_j")
        counter.inc(cost)
        if self._prev_ledger_observer is not None:
            self._prev_ledger_observer(node_id, kind, cost)

    def _on_itinerary_build(self, itinerary) -> None:
        self.metrics.counter("itinerary.builds").inc()
        self.metrics.histogram("itinerary.waypoints").observe(
            len(itinerary.waypoints))

    # -- router observer (GpsrRouter.obs) -------------------------------

    def route_hop(self, inner_kind: str, perimeter: bool) -> None:
        self.metrics.counter("gpsr.forwards").inc()
        if perimeter:
            self.metrics.counter("gpsr.perimeter_hops").inc()

    def route_link_retry(self, _inner_kind: str) -> None:
        self.metrics.counter("gpsr.link_retries").inc()

    def route_delivered(self, _inner_kind: str, hops: int) -> None:
        self.metrics.counter("gpsr.deliveries").inc()
        self.metrics.histogram("gpsr.route.hops").observe(hops)

    def route_dropped(self, _inner_kind: str, reason: str) -> None:
        self.metrics.counter("gpsr.drops").inc()
        self.metrics.counter(f"gpsr.drops.{reason}").inc()

    def route_mode(self, _inner_kind: str, qid: Optional[int],
                   node_id: int, old: str, new: str, dist_m: float,
                   at: float) -> None:
        """A route flipped greedy<->perimeter at ``node_id``."""
        self.metrics.counter(f"gpsr.mode.{old}_to_{new}").inc()
        if new == "perimeter":
            self.metrics.counter("gpsr.perimeter_entries").inc()
        if qid is not None:
            self.stage_instant(qid, self.spans.instant(
                f"gpsr {old}->{new}", at=at, node=node_id, query_id=qid,
                dist_m=dist_m))

    def route_anchor(self, _inner_kind: str, qid: Optional[int],
                     node_id: int, offset_m: float, mode: str,
                     reason: str, at: float) -> None:
        """A route-to-location terminal declared ``node_id`` the home
        anchor, ``offset_m`` away from the geometric target."""
        self.metrics.histogram("gpsr.anchor.offset_m").observe(offset_m)
        self.metrics.counter(f"gpsr.anchor.{reason}").inc()
        if qid is not None:
            self.stage_instant(qid, self.spans.instant(
                "anchor declared", at=at, node=node_id, query_id=qid,
                offset_m=offset_m, mode=mode, reason=reason))

    # ------------------------------------------------------------------
    # tail-sampling plumbing (no-ops when the sampler is off)
    # ------------------------------------------------------------------

    def _stage(self, qid: int, span_id: int) -> None:
        if self.sampler is not None:
            self.sampler.note_span(("q", qid), span_id)

    def stage_instant(self, qid: int, inst) -> None:
        """Buffer an instant under its query's staging key."""
        if self.sampler is not None:
            self.sampler.note_instant(("q", qid), inst)

    def _observe_query(self, qid: int, series: str,
                       value: float) -> None:
        """Record a per-query histogram observation, deferred to the
        promote/discard decision when the query is staged."""
        if self.sampler is None \
                or not self.sampler.buffer(("q", qid), series, value):
            self.metrics.histogram(series).observe(value)

    # -- service-layer staging (called by repro.service) ----------------

    def service_opened(self, service_id: int, span_id: int) -> None:
        """A served query began: stage it as one sampling unit."""
        if self.sampler is not None:
            key = ("s", service_id)
            self.sampler.open(key)
            self.sampler.note_span(key, span_id)

    def service_attempt(self, service_id: int, query_id: int) -> None:
        """Alias a protocol attempt onto its served query, so the whole
        serve tree is promoted or discarded together."""
        if self.sampler is not None:
            self.sampler.adopt(("q", query_id), ("s", service_id))

    def service_flag(self, service_id: int, reason: str) -> None:
        """Force promotion of a served query (breaker opened on it)."""
        if self.sampler is not None:
            self.sampler.flag(("s", service_id), reason)

    def service_finalized(self, service_id: int,
                          complete: bool) -> Optional[bool]:
        """Decide a served query's sampling fate at finalization."""
        if self.sampler is not None:
            return self.sampler.finalize(("s", service_id), complete)
        return None

    # ------------------------------------------------------------------
    # protocol lifecycle observers (DIKNN)
    # ------------------------------------------------------------------

    def query_issued(self, query, sink_id: int, at: float) -> None:
        qid = query.query_id
        self.metrics.counter("diknn.query.issued").inc()
        self._issued_at[qid] = at
        self._qpoint[qid] = (query.point.x, query.point.y)
        self._energy0[qid] = self._network.ledger.total_j()
        self._root[qid] = self.spans.begin(
            f"query q{qid}", "query", at=at, node=sink_id, query_id=qid,
            k=query.k)
        if self.sampler is not None:
            key = ("q", qid)
            if self.sampler.resolve(key) == key:
                # a bare protocol query is its own sampling unit; a
                # served attempt was already adopted by its service key
                self.sampler.open(key)
            self.sampler.note_span(key, self._root[qid])

    def route_attempt(self, qid: int, attempt: int, at: float) -> None:
        root = self._root.get(qid)
        if root is None:
            return
        if attempt == 0 and qid not in self._route:
            self._route[qid] = self.spans.begin(
                "route", "route", at=at,
                node=self.spans.get(root).node, query_id=qid, parent=root)
            self._stage(qid, self._route[qid])
        else:
            self.metrics.counter("diknn.query.route_retries").inc()
            self.stage_instant(qid, self.spans.instant(
                "route retry", at=at, query_id=qid, attempt=attempt))

    def home_reached(self, qid: int, node_id: int, radius: float,
                     hops: int, at: float) -> None:
        self.metrics.histogram("diknn.route.hops").observe(hops)
        self.metrics.histogram("diknn.knnb.radius_m").observe(radius)
        extra: Dict[str, float] = {}
        qpoint = self._qpoint.get(qid)
        if qpoint is not None and self._network is not None:
            home_pos = self._network.nodes[node_id].position()
            dx = home_pos.x - qpoint[0]
            dy = home_pos.y - qpoint[1]
            displacement = (dx * dx + dy * dy) ** 0.5
            extra["displacement_m"] = displacement
            self.metrics.histogram(
                "diknn.home.displacement_m").observe(displacement)
        span_id = self._route.pop(qid, None)
        if span_id is not None and self.spans.is_open(span_id):
            self.spans.end(span_id, at=at, home=node_id, hops=hops,
                           radius_m=radius, **extra)

    def sector_dispatched(self, qid: int, sector: int, node_id: int,
                          at: float) -> None:
        key = (qid, sector)
        if key in self._sector and self.spans.is_open(self._sector[key]):
            # Watchdog re-dispatch into a still-unreported sector: the
            # traversal restarts inside the same sector span.
            self.stage_instant(qid, self.spans.instant(
                "sector redispatch", at=at, node=node_id,
                query_id=qid, sector=sector))
            return
        self.metrics.counter("diknn.sector.dispatched").inc()
        self._sector[key] = self.spans.begin(
            f"sector {sector}", "sector", at=at, node=node_id,
            query_id=qid, parent=self._root.get(qid), sector=sector)
        self._stage(qid, self._sector[key])

    def token_hop(self, qid: int, sector: int, node_id: int,
                  at: float) -> None:
        self.metrics.counter("diknn.token.hops").inc()
        key = (qid, sector)
        prev = self._window.pop(key, None)
        if prev is not None and self.spans.is_open(prev):
            # The Q-node died before its window closed; the token only
            # moves on via a fresh dispatch.
            self.spans.end(prev, at=at, status="superseded")
        parent = self._sector.get(key)
        if parent is not None and not self.spans.is_open(parent):
            # The sector already reported (watchdog re-query raced the
            # traversal); the straggling token's window cannot attach to
            # a closed parent.
            parent = None
        self._window[key] = self.spans.begin(
            f"window @{node_id}", "window", at=at, node=node_id,
            query_id=qid, parent=parent, sector=sector)
        self._stage(qid, self._window[key])

    def token_retry(self, qid: int, sector: int, node_id: int,
                    at: float) -> None:
        self.metrics.counter("diknn.token.retries").inc()
        self.stage_instant(qid, self.spans.instant(
            "token retry", at=at, node=node_id, query_id=qid,
            sector=sector))

    def sector_void(self, qid: int, sector: int, node_id: int,
                    voids: int, consecutive: int, at: float) -> None:
        """The sector itinerary detoured around a coverage void."""
        self.metrics.counter("diknn.sector.voids").inc()
        self.stage_instant(qid, self.spans.instant(
            "void detour", at=at, node=node_id, query_id=qid,
            sector=sector, voids=voids, consecutive=consecutive))

    def sector_finished(self, qid: int, sector: int, node_id: int,
                        reason: str, waypoint_index: int, voids: int,
                        progress: float, at: float) -> None:
        """A sector traversal ended (before the result bundle is sent).

        ``reason`` is ``plan_complete`` / ``dead_end`` /
        ``detours_exhausted``; ``progress`` is the fraction of the
        waypoint plan consumed."""
        self.metrics.counter(f"diknn.sector.finish.{reason}").inc()
        self.metrics.histogram("diknn.sector.progress").observe(progress)
        self.stage_instant(qid, self.spans.instant(
            "sector finished", at=at, node=node_id, query_id=qid,
            sector=sector, reason=reason, waypoint_index=waypoint_index,
            voids=voids, progress=progress))

    def window_closed(self, qid: int, sector: int, node_id: int,
                      replies: int, at: float) -> None:
        self.metrics.histogram("diknn.window.replies").observe(replies)
        span_id = self._window.pop((qid, sector), None)
        if span_id is not None and self.spans.is_open(span_id):
            self.spans.end(span_id, at=at, replies=replies)

    def bundle_sent(self, qid: int, sectors: List[int], node_id: int,
                    at: float) -> None:
        self.metrics.counter("diknn.bundle.sent").inc()
        key = (qid, frozenset(sectors))
        if key in self._return and self.spans.is_open(self._return[key]):
            self.stage_instant(qid, self.spans.instant(
                "bundle resent", at=at, node=node_id, query_id=qid))
            return
        self._return[key] = self.spans.begin(
            "return", "return", at=at, node=node_id, query_id=qid,
            parent=self._sector.get((qid, sectors[0])),
            sectors=list(sectors))
        self._stage(qid, self._return[key])

    def bundle_received(self, qid: int, sectors: List[int],
                        at: float) -> None:
        fresh = False
        for key, span_id in list(self._return.items()):
            if key[0] == qid and key[1] & set(sectors) \
                    and self.spans.is_open(span_id):
                self.spans.end(span_id, at=at)
        for sector in sectors:
            span_id = self._sector.get((qid, sector))
            if span_id is not None and self.spans.is_open(span_id):
                fresh = True
                # A watchdog re-query can race the original traversal:
                # the sector's answer arrives while a collection window
                # is still open inside it.  Close the window with the
                # sector (a child may not outlive its parent).
                window_id = self._window.pop((qid, sector), None)
                if window_id is not None and self.spans.is_open(window_id):
                    self.spans.end(window_id, at=at, status="superseded")
                span = self.spans.end(span_id, at=at)
                self._observe_query(qid, "diknn.sector.latency_s",
                                    at - span.start)
        if fresh:
            self.metrics.counter("diknn.bundle.received").inc()
        else:
            self.metrics.counter("diknn.bundle.duplicates").inc()

    def requery_dispatched(self, qid: int, sectors: List[int],
                           at: float) -> None:
        self.metrics.counter("diknn.requery.dispatched").inc(len(sectors))
        self.stage_instant(qid, self.spans.instant(
            "watchdog requery", at=at, query_id=qid,
            sectors=list(sectors)))

    def query_finalized(self, qid: int, completed: bool,
                        at: float) -> None:
        root = self._root.pop(qid, None)
        if root is None:
            return  # a protocol this layer does not instrument
        status = "completed" if completed else "abandoned"
        self.metrics.counter(f"diknn.query.{status}").inc()
        # Close every straggler bottom-up so children end before parents.
        for store, extra in ((self._window, {"status": "unfinished"}),
                             (self._return, {"status": "lost"}),
                             (self._sector, {"status": "unreported"})):
            for key in [k for k in store if k[0] == qid]:
                span_id = store.pop(key)
                if self.spans.is_open(span_id):
                    self.spans.end(span_id, at=at, **extra)
        span_id = self._route.pop(qid, None)
        if span_id is not None and self.spans.is_open(span_id):
            self.spans.end(span_id, at=at, status="unfinished")
        self.spans.end(root, at=at, status=status)
        self._qpoint.pop(qid, None)
        issued = self._issued_at.pop(qid, None)
        if completed and issued is not None:
            self._observe_query(qid, "diknn.query.latency_s", at - issued)
        energy0 = self._energy0.pop(qid, None)
        if energy0 is not None:
            # Approximate under overlapping queries (ledger deltas are
            # network-wide), exactly like the runner's per-query energy.
            self._observe_query(qid, "diknn.query.energy_j",
                                self._network.ledger.total_j() - energy0)
        if self.sampler is not None:
            key = ("q", qid)
            if self.sampler.resolve(key) == key:
                # bare query: decide now; a served attempt's fate rides
                # its owning service key (decided by the service layer)
                self.sampler.finalize(key, completed)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def run_summary(self) -> Dict[str, object]:
        """JSON-safe digest of the run's telemetry (for RunMetrics)."""
        self.finalize()
        problems = self.spans.check_integrity()
        out: Dict[str, object] = {
            "metrics": self.metrics.to_dict(),
            "spans": len(self.spans.spans),
            "open_spans": len(self.spans.open_spans()),
            "span_problems": problems,
            "instants": len(self.spans.instants),
            "raw_events": (len(self.events)
                           if self.events is not None else 0),
        }
        if self.sampler is not None:
            out["sampling"] = self.sampler.summary()
        if self.profiler is not None:
            out["kernel_hotspots"] = [
                {"handler": label, "calls": calls, "total_s": total_s,
                 "mean_us": mean_us, "share": share}
                for label, calls, total_s, mean_us, share
                in self.profiler.to_rows(10)]
        return out

    def report(self, top: int = 10) -> str:
        """Human-readable end-of-run telemetry report."""
        self.finalize()
        parts = [self.metrics.summary_table()]
        queries = sorted({s.query_id for s in self.spans.spans
                          if s.query_id is not None})
        parts.append(f"\nspan trees: {len(queries)} queries, "
                     f"{len(self.spans.spans)} spans, "
                     f"{len(self.spans.instants)} instants")
        if self.profiler is not None and self.profiler.events_timed:
            parts.append("\n" + self.profiler.report(top))
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# process-wide switch (what the CLI's --obs flips)
# ---------------------------------------------------------------------------

_ENABLED = False
_SAMPLE_EVERY_N = 0
_ACTIVE: List[Telemetry] = []


def enable_observability(enabled: bool = True,
                         sample_every_n: int = 0) -> None:
    """Turn telemetry on/off for subsequently built simulations.

    ``sample_every_n > 0`` selects the scale-aware sampled tier: the
    raw-event trace and kernel profiler stay off and per-query spans go
    through the tail sampler (the CLI's ``--obs-sample N``)."""
    global _ENABLED, _SAMPLE_EVERY_N
    _ENABLED = enabled
    _SAMPLE_EVERY_N = sample_every_n if enabled else 0


def observability_enabled() -> bool:
    return _ENABLED


def maybe_attach_obs(handle) -> Optional[Telemetry]:
    """Attach a :class:`Telemetry` to ``handle`` when observability is on.

    Called by :func:`repro.experiments.config.build_simulation`; returns
    the telemetry (also recorded on ``handle.obs``) or None.
    """
    if not _ENABLED:
        return None
    if _SAMPLE_EVERY_N > 0:
        telemetry = Telemetry(profile_kernel=False, trace_events=False,
                              sample_every_n=_SAMPLE_EVERY_N)
    else:
        telemetry = Telemetry()
    telemetry.attach_handle(handle)
    _ACTIVE.append(telemetry)
    return telemetry


def active_telemetry() -> List[Telemetry]:
    """Every telemetry attached this process (latest last)."""
    return list(_ACTIVE)


def reset_observability() -> None:
    """Disable telemetry and detach everything (tests)."""
    global _ENABLED, _SAMPLE_EVERY_N
    _ENABLED = False
    _SAMPLE_EVERY_N = 0
    for telemetry in _ACTIVE:
        telemetry.detach()
    _ACTIVE.clear()
