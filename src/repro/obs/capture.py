"""Scenario capture: run a pinned scenario with telemetry attached.

Reuses the golden-trace scenario matrix (``repro.validate.golden``) so a
captured trace is directly comparable against the committed digests: the
telemetry's raw-event stream must fingerprint identically to the fixture,
proving instrumentation changed nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .flight import FlightRecorder
from .telemetry import Telemetry


@dataclass
class CaptureResult:
    """One instrumented scenario run."""

    name: str
    telemetry: Telemetry
    digest: str          # sha256 of the raw-event stream
    completed: bool      # did the query answer within the window?
    spec: str
    #: the (uninstalled) flight recorder when capture ran with one; its
    #: ring still holds the run's tail and can be dumped
    flight: Optional[FlightRecorder] = None

    @property
    def spans(self):
        return self.telemetry.spans

    @property
    def metrics(self):
        return self.telemetry.metrics


def scenario_names():
    """Names of the capturable pinned scenarios."""
    from ..validate.golden import GOLDEN_SPECS
    return [spec.name for spec in GOLDEN_SPECS]


def capture_scenario(name: str = "static-diknn",
                     profile_kernel: bool = True,
                     sample_every_n: int = 0,
                     flight: bool = False) -> CaptureResult:
    """Run one golden scenario with a :class:`Telemetry` attached.

    Mirrors ``run_golden`` exactly — same config, same fixed
    ``query_id=1``, same full-timeout window — with the telemetry's own
    ``TraceLog`` standing in for the digest trace.

    ``sample_every_n > 0`` additionally runs the tail sampler (raw-event
    capture stays on so the digest remains comparable); ``flight``
    installs a :class:`~repro.obs.flight.FlightRecorder` on the kernel
    and MAC.  Both must leave the digest bit-identical — that is the
    point of the determinism suite using this entry.
    """
    # Heavy imports stay local: repro.obs must be importable before the
    # experiment/protocol layers finish loading.
    from ..core.query import KNNQuery
    from ..experiments.config import SimulationConfig, build_simulation
    from ..geometry import Vec2
    from ..validate.golden import GOLDEN_SPECS, _make_protocol, trace_digest

    by_name = {spec.name: spec for spec in GOLDEN_SPECS}
    if name not in by_name:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"choose from {sorted(by_name)}")
    spec = by_name[name]
    config = SimulationConfig(
        n_nodes=spec.n_nodes, field_size=spec.field_size,
        max_speed=spec.max_speed, seed=spec.seed,
        crash_rate=spec.crash_rate, node_downtime_s=spec.node_downtime_s)
    handle = build_simulation(config, _make_protocol(spec.protocol))
    telemetry = handle.obs
    if telemetry is None:
        telemetry = Telemetry(profile_kernel=profile_kernel,
                              sample_every_n=sample_every_n)
        telemetry.attach_handle(handle)
    recorder = None
    if flight:
        recorder = FlightRecorder().install(handle.sim,
                                            mac=handle.network.mac)
    handle.warm_up()
    query = KNNQuery(query_id=1, sink_id=handle.sink.id,
                     point=Vec2(*spec.point), k=spec.k,
                     issued_at=handle.sim.now)
    done = []
    handle.protocol.issue(handle.sink, query, done.append)
    handle.sim.run(until=handle.sim.now + spec.timeout)
    stop = getattr(handle.protocol, "stop", None)
    if callable(stop):
        stop()
    if not done:
        handle.protocol.abandon(query.query_id)
    telemetry.finalize()
    if recorder is not None:
        recorder.uninstall()
    entries = (telemetry.events.entries
               if telemetry.events is not None else [])
    return CaptureResult(name=spec.name, telemetry=telemetry,
                         digest=trace_digest(entries),
                         completed=bool(done), spec=spec.describe(),
                         flight=recorder)
