"""Query post-mortem: causal root-cause attribution from recorded
artifacts.

The service tier says *what* happened to a query (COMPLETE / PARTIAL /
SHED / TIMEOUT / FAILED); this module answers *why*.  It is pure
post-processing: the engine consumes the span tree, the per-query
instants, the flight-recorder ring and the service transition notes —
either live off a :class:`~repro.obs.telemetry.Telemetry` or replayed
from a dumped flight bundle — and classifies each query into a small
attribution taxonomy with supporting evidence:

==========================  ================================================
cause                       meaning
==========================  ================================================
``ANCHOR_DISPLACED``        GPSR declared a home node far from the
                            geometric query point (perimeter local
                            minimum), so the itinerary swept the wrong
                            region — the answer can look healthy while
                            being tens of meters wrong (ROADMAP item 4).
``PERIMETER_STUCK``         the routing phase never reached a home node
                            (perimeter dead end / loop / hop budget).
``SECTOR_LOST_TO_CRASH``    a sector never reported and its collection
                            windows were superseded — the token chain died
                            on a crashed / departed Q-node.
``COVERAGE_GAP``            a sector gave up mid-plan (detour budget
                            exhausted around voids) — the region is
                            under-covered, not broken.
``DEADLINE_QUEUE_WAIT``     the serving deadline burned in the admission
                            queue, not in the protocol.
``CONGESTION_BACKOFF``      retries / MAC backoff ate the deadline.
``RETRY_EXHAUSTED``         the service spent its retry budget and gave
                            up before the deadline.
``BREAKER_SHORT_CIRCUIT``   the region breaker was open; the answer (if
                            any) came degraded from the cache.
``ADMISSION_SHED``          refused at admission: in-flight and queue
                            budgets were both full.
``HEALTHY``                 completed with no flags.
``UNKNOWN``                 degraded, but no rule matched.
==========================  ================================================

Every attached protocol annotation (anchor declarations, mode flips,
void detours, sector finishes) is a pure observer note, so instrumented
runs stay bit-identical on the golden digests; this module never touches
a live simulation at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .flight import FlightRecorder, instant_to_wire, span_to_wire

# -- attribution taxonomy ---------------------------------------------------

ANCHOR_DISPLACED = "ANCHOR_DISPLACED"
PERIMETER_STUCK = "PERIMETER_STUCK"
SECTOR_LOST_TO_CRASH = "SECTOR_LOST_TO_CRASH"
COVERAGE_GAP = "COVERAGE_GAP"
DEADLINE_QUEUE_WAIT = "DEADLINE_QUEUE_WAIT"
CONGESTION_BACKOFF = "CONGESTION_BACKOFF"
RETRY_EXHAUSTED = "RETRY_EXHAUSTED"
BREAKER_SHORT_CIRCUIT = "BREAKER_SHORT_CIRCUIT"
ADMISSION_SHED = "ADMISSION_SHED"
HEALTHY = "HEALTHY"
UNKNOWN = "UNKNOWN"

ALL_CAUSES = (ANCHOR_DISPLACED, PERIMETER_STUCK, SECTOR_LOST_TO_CRASH,
              COVERAGE_GAP, DEADLINE_QUEUE_WAIT, CONGESTION_BACKOFF,
              RETRY_EXHAUSTED, BREAKER_SHORT_CIRCUIT, ADMISSION_SHED,
              HEALTHY, UNKNOWN)

#: ranking for ``worst`` — higher is worse
_SEVERITY = {
    HEALTHY: 0,
    UNKNOWN: 1,
    COVERAGE_GAP: 2,
    CONGESTION_BACKOFF: 3,
    DEADLINE_QUEUE_WAIT: 4,
    RETRY_EXHAUSTED: 5,
    ADMISSION_SHED: 6,
    BREAKER_SHORT_CIRCUIT: 7,
    SECTOR_LOST_TO_CRASH: 8,
    PERIMETER_STUCK: 9,
    ANCHOR_DISPLACED: 10,
}

#: default anchor-displacement threshold when the radio range is unknown
_DEFAULT_ANCHOR_THRESHOLD_M = 30.0
#: displacement beyond this many radio ranges flags the anchor
_ANCHOR_RANGE_FACTOR = 1.5
#: flight-ring MAC trouble records that count as congestion evidence
_CONGESTION_MIN_EVENTS = 3


@dataclass
class Evidence:
    """One supporting fact behind an attribution."""

    kind: str
    detail: str
    time: Optional[float] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"kind": self.kind, "detail": self.detail}
        if self.time is not None:
            out["time"] = self.time
        if self.data:
            out["data"] = dict(self.data)
        return out


@dataclass
class Attribution:
    """The verdict on one query (protocol- or service-level)."""

    subject: str                      # "q<id>" or "s<id>"
    cause: str
    status: str                       # root/serve span terminal status
    confidence: float                 # heuristic certainty in [0, 1]
    evidence: List[Evidence] = field(default_factory=list)
    timeline: List[dict] = field(default_factory=list)
    query_id: Optional[int] = None
    service_id: Optional[int] = None

    @property
    def flagged(self) -> bool:
        """Worth an operator's attention even if nominally complete."""
        return self.cause not in (HEALTHY,)

    @property
    def severity(self) -> Tuple[int, float]:
        return (_SEVERITY.get(self.cause, 1), self.confidence)

    def summary(self) -> str:
        head = (f"{self.subject}: {self.cause} "
                f"(status={self.status}, "
                f"confidence={self.confidence:.2f})")
        lines = [head]
        for ev in self.evidence:
            stamp = f" @{ev.time:.3f}s" if ev.time is not None else ""
            lines.append(f"  - [{ev.kind}]{stamp} {ev.detail}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "query_id": self.query_id,
            "service_id": self.service_id,
            "cause": self.cause,
            "status": self.status,
            "confidence": round(self.confidence, 4),
            "evidence": [ev.to_dict() for ev in self.evidence],
            "timeline": list(self.timeline),
        }


# -- helpers ----------------------------------------------------------------

def _attr(record: dict, key: str, default=None):
    return record.get("attrs", {}).get(key, default)


def _float_attr(record: dict, key: str) -> Optional[float]:
    value = _attr(record, key)
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


class PostMortem:
    """Root-cause attribution over normalized (wire-format) artifacts.

    ``spans`` / ``instants`` are the JSON-safe dicts
    :func:`~repro.obs.flight.span_to_wire` /
    :func:`~repro.obs.flight.instant_to_wire` produce; ``events`` and
    ``triggers`` are flight-ring records.  Build one with
    :meth:`from_telemetry` (live run) or :meth:`from_bundle` (dumped
    flight bundle) — both end up here, so a bundle explains identically
    to the run that wrote it.
    """

    def __init__(self, spans: Iterable[dict], instants: Iterable[dict],
                 events: Iterable[dict] = (), triggers: Iterable[dict] = (),
                 radio_range_m: Optional[float] = None):
        self.spans = list(spans)
        self.instants = list(instants)
        self.events = list(events)
        self.triggers = list(triggers)
        self.radio_range_m = radio_range_m
        self._spans_by_qid: Dict[int, List[dict]] = {}
        self._instants_by_qid: Dict[int, List[dict]] = {}
        for span in self.spans:
            qid = span.get("query_id")
            if qid is not None:
                self._spans_by_qid.setdefault(int(qid), []).append(span)
        for inst in self.instants:
            qid = inst.get("query_id")
            if qid is not None:
                self._instants_by_qid.setdefault(int(qid), []).append(inst)
        #: service-level ("serve s<N>") spans, id -> span
        self.service_spans: Dict[int, dict] = {}
        for span in self.spans:
            if span.get("category") == "service" \
                    and span.get("name", "").startswith("serve s"):
                try:
                    sid = int(span["name"].split("serve s", 1)[1])
                except ValueError:
                    continue
                self.service_spans[sid] = span

    # -- construction ---------------------------------------------------

    @classmethod
    def from_telemetry(cls, telemetry,
                       radio_range_m: Optional[float] = None
                       ) -> "PostMortem":
        """Snapshot a live (or finalized) telemetry hub."""
        if radio_range_m is None and telemetry._network is not None:
            radio_range_m = telemetry._network.radio.range_m
        sim = telemetry._sim
        recorder = getattr(sim, "flight", None) if sim is not None else None
        events: List[dict] = recorder.records() if recorder else []
        triggers: List[dict] = list(recorder.triggers) if recorder else []
        return cls([span_to_wire(s) for s in telemetry.spans.spans],
                   [instant_to_wire(i) for i in telemetry.spans.instants],
                   events=events, triggers=triggers,
                   radio_range_m=radio_range_m)

    @classmethod
    def from_bundle(cls, path) -> "PostMortem":
        """Rebuild the engine from a dumped flight bundle (.jsonl[.gz])."""
        groups = FlightRecorder.read_bundle(path)
        return cls(groups.get("span", []), groups.get("instant", []),
                   events=groups.get("event", []),
                   triggers=groups.get("trigger", []))

    # -- enumeration ----------------------------------------------------

    def query_ids(self) -> List[int]:
        """Protocol query ids that have a root span."""
        return sorted(q for q, spans in self._spans_by_qid.items()
                      if any(s.get("category") == "query" for s in spans))

    def service_ids(self) -> List[int]:
        return sorted(self.service_spans)

    # -- protocol-level attribution -------------------------------------

    def _anchor_threshold(self) -> float:
        if self.radio_range_m:
            return _ANCHOR_RANGE_FACTOR * self.radio_range_m
        return _DEFAULT_ANCHOR_THRESHOLD_M

    def _timeline(self, qid: int) -> List[dict]:
        """Merged, time-ordered causal timeline for one query."""
        entries: List[dict] = []
        for span in self._spans_by_qid.get(qid, []):
            entries.append({"time": span["start"], "what": "span_open",
                            "name": span["name"], "node": span.get("node")})
            if span.get("end") is not None:
                entries.append({"time": span["end"], "what": "span_close",
                                "name": span["name"],
                                "status": _attr(span, "status"),
                                "attrs": dict(span.get("attrs", {}))})
        for inst in self._instants_by_qid.get(qid, []):
            entries.append({"time": inst["time"], "what": "instant",
                            "name": inst["name"], "node": inst.get("node"),
                            "attrs": dict(inst.get("attrs", {}))})
        entries.sort(key=lambda e: (e["time"], e["what"]))
        return entries

    def explain_query(self, qid: int) -> Attribution:
        """Attribute one protocol-level query."""
        spans = self._spans_by_qid.get(qid, [])
        instants = self._instants_by_qid.get(qid, [])
        root = next((s for s in spans if s.get("category") == "query"),
                    None)
        route = next((s for s in spans if s.get("category") == "route"),
                     None)
        sectors = [s for s in spans if s.get("category") == "sector"]
        windows = [s for s in spans if s.get("category") == "window"]
        status = (_attr(root, "status", "unknown") if root is not None
                  else "unknown")
        completed = status == "completed"
        timeline = self._timeline(qid)

        anchors = [i for i in instants if i["name"] == "anchor declared"]
        mode_flips = [i for i in instants
                      if i["name"].startswith("gpsr ")]
        perimeter_entries = [i for i in mode_flips
                             if i["name"].endswith("->perimeter")]
        voids = [i for i in instants if i["name"] == "void detour"]
        finishes = [i for i in instants if i["name"] == "sector finished"]
        token_retries = [i for i in instants if i["name"] == "token retry"]
        requeries = [i for i in instants
                     if i["name"] == "watchdog requery"]
        unreported = [s for s in sectors
                      if _attr(s, "status") == "unreported"]
        superseded = [w for w in windows
                      if _attr(w, "status") in ("superseded",
                                                "unfinished")]
        exhausted = [f for f in finishes
                     if _attr(f, "reason") == "detours_exhausted"]

        def base(cause: str, conf: float,
                 evidence: List[Evidence]) -> Attribution:
            return Attribution(subject=f"q{qid}", cause=cause,
                               status=status, confidence=conf,
                               evidence=evidence, timeline=timeline,
                               query_id=qid)

        # Rule 1 — anchor displacement.  The defining ROADMAP-item-4
        # failure: the route *delivered*, every sector can report, yet
        # the whole itinerary is centered on the wrong spot.  Flagged
        # even on COMPLETE queries.
        displacement = (_float_attr(route, "displacement_m")
                        if route is not None else None)
        anchor_offset = max(
            (_float_attr(i, "offset_m") or 0.0 for i in anchors),
            default=None) if anchors else None
        offset = max((v for v in (displacement, anchor_offset)
                      if v is not None), default=None)
        threshold = self._anchor_threshold()
        if offset is not None and offset > threshold:
            evidence: List[Evidence] = []
            for inst in anchors:
                evidence.append(Evidence(
                    "anchor", f"node {inst.get('node')} declared home via "
                    f"{_attr(inst, 'reason')} in {_attr(inst, 'mode')} "
                    f"mode, {(_float_attr(inst, 'offset_m') or 0.0):.1f} "
                    "m from the query point", time=inst["time"],
                    data=dict(inst.get("attrs", {}))))
            if displacement is not None:
                evidence.append(Evidence(
                    "route", f"home node "
                    f"{_attr(route, 'home')} anchored "
                    f"{displacement:.1f} m from the query point "
                    f"(threshold {threshold:.1f} m)",
                    time=route.get("end"),
                    data={"displacement_m": displacement,
                          "radius_m": _float_attr(route, "radius_m")}))
            if perimeter_entries:
                evidence.append(Evidence(
                    "routing", f"{len(perimeter_entries)} perimeter "
                    "entr" + ("y" if len(perimeter_entries) == 1
                              else "ies") + " before the anchor — GPSR "
                    "hit a local minimum and walked the void boundary",
                    time=perimeter_entries[0]["time"]))
            if voids:
                evidence.append(Evidence(
                    "itinerary", f"{len(voids)} void detours while "
                    "sweeping the (displaced) boundary"))
            conf = 0.9 if (perimeter_entries or anchors) else 0.7
            return base(ANCHOR_DISPLACED, conf, evidence)

        # Rule 2 — routing never pinned a home node.
        route_unfinished = (route is not None
                            and _attr(route, "status") == "unfinished")
        if not completed and (route_unfinished
                              or (route is None and not sectors)):
            evidence = []
            if route_unfinished:
                evidence.append(Evidence(
                    "route", "routing phase never delivered a home node",
                    time=route.get("end")))
            for inst in mode_flips[:4]:
                evidence.append(Evidence(
                    "routing", inst["name"] + f" at node "
                    f"{inst.get('node')}", time=inst["time"],
                    data=dict(inst.get("attrs", {}))))
            conf = 0.8 if (route_unfinished and perimeter_entries) \
                else 0.5
            return base(PERIMETER_STUCK, conf, evidence)

        # Rule 3 — a sector's token chain died.
        if not completed and unreported:
            lost = sorted(_attr(s, "sector", -1) for s in unreported)
            evidence = [Evidence(
                "sector", f"sector(s) {lost} never reported")]
            for w in superseded[:4]:
                evidence.append(Evidence(
                    "window", f"collection window at node "
                    f"{w.get('node')} (sector {_attr(w, 'sector')}) "
                    f"ended {_attr(w, 'status')} — Q-node lost",
                    time=w.get("end")))
            for inst in requeries[:2]:
                evidence.append(Evidence(
                    "watchdog", "sink watchdog re-queried sectors "
                    f"{_attr(inst, 'sectors')}", time=inst["time"]))
            if superseded or token_retries:
                conf = 0.8
                return base(SECTOR_LOST_TO_CRASH, conf, evidence)
            if exhausted or voids:
                for f in exhausted[:4]:
                    evidence.append(Evidence(
                        "itinerary", f"sector {_attr(f, 'sector')} gave "
                        "up after exhausting its detour budget at "
                        f"{_attr(f, 'progress', 0.0):.0%} of the plan",
                        time=f["time"], data=dict(f.get("attrs", {}))))
                return base(COVERAGE_GAP, 0.6, evidence)
            return base(UNKNOWN, 0.3, evidence)

        # Rule 4 — completed, but a sector aborted mid-plan.
        if exhausted:
            evidence = [Evidence(
                "itinerary", f"sector {_attr(f, 'sector')} exhausted its "
                f"detour budget ({_attr(f, 'voids')} voids) at "
                f"{_attr(f, 'progress', 0.0):.0%} of its plan",
                time=f["time"], data=dict(f.get("attrs", {})))
                for f in exhausted]
            return base(COVERAGE_GAP, 0.6 if completed else 0.5, evidence)

        if completed:
            return base(HEALTHY, 0.9, [])
        return base(UNKNOWN, 0.2, [])

    # -- service-level attribution --------------------------------------

    def _congestion_evidence(self, start: float,
                             end: Optional[float]) -> List[Evidence]:
        """MAC trouble-frame flight notes inside a serve window."""
        upper = end if end is not None else float("inf")
        hits = [e for e in self.events
                if e.get("category") == "mac"
                and start <= e.get("time", -1.0) <= upper]
        if len(hits) < _CONGESTION_MIN_EVENTS:
            return []
        return [Evidence(
            "mac", f"{len(hits)} MAC trouble frames (retry/backoff/"
            "collision) recorded during the serve window",
            time=hits[0].get("time"))]

    def explain_service(self, service_id: int) -> Attribution:
        """Attribute one served query (delegating to its attempts)."""
        span = self.service_spans.get(service_id)
        if span is None:
            return Attribution(subject=f"s{service_id}", cause=UNKNOWN,
                               status="unknown", confidence=0.0,
                               service_id=service_id)
        status = _attr(span, "status", "unknown")
        reason = _attr(span, "reason", "")
        retries = int(_attr(span, "retries", 0) or 0)
        queue_wait = _float_attr(span, "queue_wait_s")
        attempt_raw = _attr(span, "attempt_qids", "") or ""
        attempt_ids = [int(tok) for tok in str(attempt_raw).split(",")
                       if tok.strip().isdigit()]
        start, end = span["start"], span.get("end")
        latency = (end - start) if end is not None else None

        timeline: List[dict] = []
        attempts = [self.explain_query(qid) for qid in attempt_ids]
        for att in attempts:
            timeline.extend(att.timeline)
        timeline.sort(key=lambda e: e["time"])

        def base(cause: str, conf: float,
                 evidence: List[Evidence]) -> Attribution:
            evidence = list(evidence)
            if retries:
                evidence.append(Evidence(
                    "service", f"{retries} protocol retries across "
                    f"{len(attempt_ids) or retries + 1} attempts"))
            return Attribution(
                subject=f"s{service_id}", cause=cause, status=status,
                confidence=conf, evidence=evidence, timeline=timeline,
                service_id=service_id,
                query_id=attempt_ids[-1] if attempt_ids else None)

        if reason == "admission":
            return base(ADMISSION_SHED, 0.95, [Evidence(
                "service", "refused at admission: in-flight and queue "
                "budgets were both full", time=start)])
        if reason == "breaker_open":
            degraded = bool(_attr(span, "degraded", False))
            detail = ("answered degraded from the region cache"
                      if degraded else "failed fast, no cached answer")
            return base(BREAKER_SHORT_CIRCUIT, 0.95, [Evidence(
                "breaker", f"region breaker was open — {detail}",
                time=start)])

        # Protocol-level causes win when an attempt shows a real defect.
        protocol_cause = max(
            (a for a in attempts if a.cause not in (HEALTHY, UNKNOWN)),
            key=lambda a: a.severity, default=None)

        if status == "complete":
            if protocol_cause is not None:
                att = base(protocol_cause.cause, protocol_cause.confidence,
                           protocol_cause.evidence)
                return att
            return base(HEALTHY, 0.9, [])

        if queue_wait is not None and latency and latency > 0 \
                and queue_wait / latency > 0.5:
            return base(DEADLINE_QUEUE_WAIT, 0.85, [Evidence(
                "service", f"{queue_wait:.3f} s of the {latency:.3f} s "
                f"to finalization ({queue_wait / latency:.0%}) was spent "
                "waiting for admission", time=start,
                data={"queue_wait_s": queue_wait,
                      "latency_s": latency})])

        if protocol_cause is not None:
            return base(protocol_cause.cause, protocol_cause.confidence,
                        protocol_cause.evidence)

        congestion = self._congestion_evidence(start, end)
        if reason in ("retry_budget", "deadline_no_retry"):
            if congestion:
                return base(CONGESTION_BACKOFF, 0.7, congestion)
            return base(RETRY_EXHAUSTED, 0.7, [Evidence(
                "service", f"gave up with reason {reason!r} after "
                f"{retries} retries")])
        if congestion:
            return base(CONGESTION_BACKOFF, 0.6, congestion)
        if reason in ("deadline", "drain"):
            return base(UNKNOWN, 0.3, [Evidence(
                "service", f"finalized {status} ({reason}); no protocol "
                "or queue evidence survived in the recorded artifacts")])
        return base(UNKNOWN, 0.2, [])

    # -- fleet views ----------------------------------------------------

    def explain_all(self) -> List[Attribution]:
        """Every query in the artifacts; service-level records subsume
        their protocol attempts (bare protocol queries stay q-level)."""
        out = [self.explain_service(sid) for sid in self.service_ids()]
        claimed = set()
        for sid in self.service_ids():
            raw = _attr(self.service_spans[sid], "attempt_qids", "") or ""
            claimed.update(int(tok) for tok in str(raw).split(",")
                           if tok.strip().isdigit())
        out.extend(self.explain_query(qid) for qid in self.query_ids()
                   if qid not in claimed)
        return out

    def worst(self, n: int = 10) -> List[Attribution]:
        """The ``n`` most severe attributions, worst first."""
        ranked = sorted(self.explain_all(),
                        key=lambda a: a.severity, reverse=True)
        return ranked[:n]


# -- aggregation / reporting ------------------------------------------------

def aggregate(attributions: Iterable[Attribution]) -> dict:
    """Fleet digest: cause histogram + flagged share ("top causes
    behind the p99 / availability burn")."""
    counts: Dict[str, int] = {}
    flagged = 0
    total = 0
    for att in attributions:
        total += 1
        counts[att.cause] = counts.get(att.cause, 0) + 1
        flagged += int(att.flagged)
    top = sorted(((cause, n) for cause, n in counts.items()
                  if cause != HEALTHY),
                 key=lambda item: (-item[1], _SEVERITY.get(item[0], 0)))
    return {"total": total, "flagged": flagged, "causes": counts,
            "top_causes": [{"cause": c, "count": n} for c, n in top]}


def write_report(attributions: List[Attribution], path) -> str:
    """Machine-readable JSONL report: one aggregate header line, then
    one attribution per line.  ``.gz`` paths compress transparently."""
    from .events import open_text
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open_text(path, "w") as handle:
        handle.write(json.dumps(
            {"record": "aggregate", **aggregate(attributions)}) + "\n")
        for att in attributions:
            handle.write(json.dumps(
                {"record": "attribution", **att.to_dict()}) + "\n")
    return str(path)


# -- replay helper (the ROADMAP item 4 counterexample) ----------------------

def replay_seed_query(seed: int, k: int, qx: float, qy: float,
                      n: int = 120, duration_s: float = 15.0,
                      field_m: float = 115.0):
    """Re-run one static-field protocol query under telemetry and
    attribute it.

    This reproduces the property-test harness construction exactly
    (same RNG discipline as ``tests.conftest.build_static_network``),
    so e.g. ``seed=9999, k=1, q=(20, 52)`` replays the known GPSR
    anchor-displacement counterexample.  Returns ``(attribution,
    result, network)``.
    """
    import numpy as np

    from ..core import DIKNNProtocol, KNNQuery, next_query_id
    from ..deploy import UniformDeployment
    from ..geometry import Rect, Vec2
    from ..mobility import StaticMobility
    from ..net import Network, SensorNode
    from ..routing import GpsrRouter
    from ..sim import Simulator
    from .telemetry import Telemetry

    sim = Simulator(seed=seed)
    net = Network(sim)
    rng = np.random.default_rng(seed)
    deploy_field = Rect.from_size(field_m, field_m)
    for i, pos in enumerate(
            UniformDeployment().generate(n, deploy_field, rng)):
        net.add_node(SensorNode(i, StaticMobility(pos), reading=float(i)))
    net.warm_up()

    proto = DIKNNProtocol()
    router = GpsrRouter(net)
    proto.install(net, router)
    telemetry = Telemetry(profile_kernel=False, trace_events=False)
    telemetry.attach(sim, net, protocol=proto, router=router)

    query = KNNQuery(query_id=next_query_id(), sink_id=0,
                     point=Vec2(qx, qy), k=k, issued_at=sim.now)
    results: List[object] = []
    proto.issue(net.nodes[0], query, results.append)
    sim.run(until=sim.now + duration_s)
    result = results[0] if results else proto.abandon(query.query_id)
    telemetry.finalize()

    engine = PostMortem.from_telemetry(telemetry)
    attribution = engine.explain_query(query.query_id)
    telemetry.detach()
    return attribution, result, net
