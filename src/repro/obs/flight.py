"""The flight recorder: an always-on ring buffer for post-mortems.

Debugging a failure inside a 50k-node soak by re-running under full
``--obs`` is impractical; the flight recorder is the black box instead.
It keeps a fixed-size ring of recent activity — kernel events, MAC
trouble frames, service state transitions — at near-zero steady-state
cost: recording is one deque append, and event labels are resolved
lazily (via the profiler's code-object labeling) only when a dump is
actually written.

A *trigger* (invariant violation, unaccounted outcome, breaker open, or
an explicit CLI/service hook) marks the moment worth explaining; the
recorder then dumps a JSONL bundle — header, triggers, the resolved
ring, and optionally the full-fidelity span trees the tail sampler
promoted for the triggering query.  Paths ending in ``.gz`` are
gzip-compressed transparently.

Install on a simulator (and optionally a MAC layer) with
:meth:`FlightRecorder.install`; both taps are the usual None-guarded
attributes, so an uninstalled run pays one comparison per event.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from .profiler import _label_of

#: trigger reasons the subsystems fire
TRIGGER_INVARIANT = "invariant_violation"
TRIGGER_BREAKER = "breaker_open"
TRIGGER_UNACCOUNTED = "unaccounted_outcome"
TRIGGER_MANUAL = "manual"


class FlightRecorder:
    """Bounded ring of recent activity, dumped on trigger."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: (time, category, kernel-callback-or-None, fields-or-None)
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.triggers: List[dict] = []
        self.dumps_written: List[str] = []
        self._sim = None
        self._mac = None

    # -- recording (hot paths) ------------------------------------------

    def record_event(self, time: float, callback) -> None:
        """Kernel tap: one append per executed event."""
        self._ring.append((time, "kernel", callback, None))
        self.recorded += 1

    def note(self, time: float, category: str, **fields) -> None:
        """Structured tap for MAC decisions and service transitions."""
        self._ring.append((time, category, None, fields))
        self.recorded += 1

    # -- installation ---------------------------------------------------

    def install(self, sim, mac=None) -> "FlightRecorder":
        """Attach to a simulator's (and optionally a MAC layer's)
        None-guarded ``flight`` slot; registers for violation notify."""
        sim.flight = self
        self._sim = sim
        if mac is not None:
            mac.flight = self
            self._mac = mac
        if self not in _ACTIVE:
            _ACTIVE.append(self)
        return self

    def uninstall(self) -> None:
        if self._sim is not None and getattr(self._sim, "flight",
                                             None) is self:
            self._sim.flight = None
        if self._mac is not None and getattr(self._mac, "flight",
                                             None) is self:
            self._mac.flight = None
        self._sim = None
        self._mac = None
        if self in _ACTIVE:
            _ACTIVE.remove(self)

    # -- triggers and dumps ---------------------------------------------

    @property
    def dropped(self) -> int:
        """Ring entries overwritten since install."""
        return max(0, self.recorded - self.capacity)

    def trigger(self, reason: str, at: float, **context) -> dict:
        """Mark a dump-worthy moment; returns the trigger record."""
        record = {"reason": reason, "time": float(at)}
        record.update(context)
        self.triggers.append(record)
        return record

    def records(self) -> List[dict]:
        """The ring resolved to JSON-safe dicts, oldest first.  Kernel
        callbacks are labeled here, not at record time."""
        label_cache: Dict[int, str] = {}
        out: List[dict] = []
        for time, category, callback, fields in self._ring:
            rec: Dict[str, object] = {"time": float(time),
                                      "category": category}
            if callback is not None:
                key = id(callback)
                label = label_cache.get(key)
                if label is None:
                    label = label_cache[key] = _label_of(callback)
                rec["event"] = label
            if fields:
                rec.update(fields)
            out.append(rec)
        return out

    def dump(self, path, spans=None, query_spans: Optional[dict] = None,
             extra: Optional[dict] = None) -> Path:
        """Write the post-mortem bundle as JSON lines.

        ``spans`` (a SpanTracker) contributes full span/instant records;
        ``query_spans`` maps a label to a list of Span objects (e.g. the
        promoted tree of the query that fired the trigger).  A ``.gz``
        suffix compresses the bundle.
        """
        from .events import open_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = 0
        with open_text(path, "w") as handle:
            def emit(record: dict) -> None:
                nonlocal lines
                handle.write(json.dumps(record) + "\n")
                lines += 1

            header = {"record": "header", "capacity": self.capacity,
                      "recorded": self.recorded, "dropped": self.dropped,
                      "triggers": len(self.triggers)}
            if extra:
                header.update(extra)
            emit(header)
            for trig in self.triggers:
                emit({"record": "trigger", **trig})
            for rec in self.records():
                emit({"record": "event", **rec})
            for source in ([spans] if spans is not None else []):
                for span in source.spans:
                    emit({"record": "span", **span_to_wire(span)})
                for inst in source.instants:
                    emit({"record": "instant", **instant_to_wire(inst)})
            for label, tree in (query_spans or {}).items():
                for span in tree:
                    emit({"record": "span", "tree": label,
                          **span_to_wire(span)})
        self.dumps_written.append(str(path))
        return path

    @staticmethod
    def read_bundle(path) -> Dict[str, List[dict]]:
        """Load a dump bundle back, grouped by record type."""
        from .events import open_text

        out: Dict[str, List[dict]] = {}
        with open_text(path, "r") as handle:
            for line in handle:
                if not line.strip():
                    continue
                record = json.loads(line)
                out.setdefault(record.get("record", "?"), []).append(record)
        return out


def _safe_attrs(attrs: dict) -> dict:
    return {key: (value if isinstance(value, (int, float, str, bool,
                                              type(None)))
                  else repr(value))
            for key, value in attrs.items()}


def span_to_wire(span) -> dict:
    return {"span_id": int(span.span_id), "name": span.name,
            "category": span.category, "start": float(span.start),
            "end": (None if span.end is None else float(span.end)),
            "node": (None if span.node is None else int(span.node)),
            "query_id": (None if span.query_id is None
                         else int(span.query_id)),
            "parent_id": (None if span.parent_id is None
                          else int(span.parent_id)),
            "attrs": _safe_attrs(span.attrs)}


def instant_to_wire(inst) -> dict:
    return {"name": inst.name, "time": float(inst.time),
            "node": (None if inst.node is None else int(inst.node)),
            "query_id": (None if inst.query_id is None
                         else int(inst.query_id)),
            "category": inst.category, "attrs": _safe_attrs(inst.attrs)}


# ---------------------------------------------------------------------------
# process-wide registry (how repro.validate finds the recorders)
# ---------------------------------------------------------------------------

_ACTIVE: List[FlightRecorder] = []


def active_recorders() -> List[FlightRecorder]:
    return list(_ACTIVE)


def notify_violation(violation) -> None:
    """Called by ``InvariantViolation.__init__``: every installed
    recorder gets a trigger so the ring survives the raise."""
    for recorder in list(_ACTIVE):
        recorder.trigger(
            TRIGGER_INVARIANT,
            getattr(violation, "time", None) or 0.0,
            invariant=getattr(violation, "invariant", "?"),
            detail=str(violation),
            node=getattr(violation, "node", None),
            query_id=getattr(violation, "query_id", None))


def reset_recorders() -> None:
    """Uninstall every recorder (tests)."""
    for recorder in list(_ACTIVE):
        recorder.uninstall()
