"""repro.obs — opt-in telemetry for simulation runs.

Layers, bottom-up:

* :mod:`.events` — the raw network event stream (``TraceLog``), the
  ground truth the golden-trace digests fingerprint;
* :mod:`.metrics` — named counters/gauges/streaming histograms;
* :mod:`.spans` — the hierarchical query-lifecycle span tree over
  simulated time;
* :mod:`.profiler` — wall-clock accounting per kernel event-handler type;
* :mod:`.sampling` — tail-based per-query sampling (keep failures at
  full fidelity, 1-in-N of the successes);
* :mod:`.flight` — the always-on flight-recorder ring, dumped to a
  post-mortem bundle on trigger;
* :mod:`.slo` — declarative latency/availability objectives with
  burn-rate alerting over rolling sim-time windows;
* :mod:`.postmortem` — causal root-cause attribution over the recorded
  artifacts (the ``repro explain`` engine);
* :mod:`.telemetry` — the hub attaching all of the above to a run;
* :mod:`.exporters` — JSONL / CSV / Chrome-trace (Perfetto) output.

Everything is strictly observational: attaching telemetry never changes
simulation results (enforced by the obs determinism test suite).
"""

from .events import (TraceEntry, TraceLog, entry_from_wire,  # noqa: F401
                     entry_to_wire, open_text)
from .exporters import (chrome_trace_events,  # noqa: F401
                        export_chrome_trace, export_jsonl,
                        export_metrics_csv, validate_chrome_trace)
from .flight import (FlightRecorder, active_recorders,  # noqa: F401
                     notify_violation, reset_recorders)
from .metrics import (Counter, Gauge, Histogram,  # noqa: F401
                      MetricsRegistry, merge_registries)
from .postmortem import (ALL_CAUSES, Attribution,  # noqa: F401
                         Evidence, PostMortem, aggregate,
                         replay_seed_query, write_report)
from .profiler import HandlerStats, KernelProfiler  # noqa: F401
from .sampling import (SAMPLING_STREAM, SamplingPolicy,  # noqa: F401
                       TailSampler)
from .slo import SloBoard, SloMonitor, SloSpec  # noqa: F401
from .spans import Instant, Span, SpanTracker  # noqa: F401
from .telemetry import (Telemetry, active_telemetry,  # noqa: F401
                        enable_observability, maybe_attach_obs,
                        observability_enabled, reset_observability)

__all__ = [
    "TraceEntry", "TraceLog", "entry_from_wire", "entry_to_wire",
    "open_text",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "merge_registries",
    "Instant", "Span", "SpanTracker",
    "HandlerStats", "KernelProfiler",
    "SAMPLING_STREAM", "SamplingPolicy", "TailSampler",
    "FlightRecorder", "active_recorders", "notify_violation",
    "reset_recorders",
    "ALL_CAUSES", "Attribution", "Evidence", "PostMortem",
    "aggregate", "replay_seed_query", "write_report",
    "SloBoard", "SloMonitor", "SloSpec",
    "Telemetry", "active_telemetry", "enable_observability",
    "maybe_attach_obs", "observability_enabled", "reset_observability",
    "chrome_trace_events", "export_chrome_trace", "export_jsonl",
    "export_metrics_csv", "validate_chrome_trace",
]
