"""Named counters, gauges and streaming histograms (the metrics registry).

The registry aggregates what the raw trace is too fine-grained to answer
directly: hop counts, MAC backoff delay, per-sector latency, collision
rate, energy per query.  All three instrument types support ``merge`` so
per-run registries can be folded into sweep-level summaries.

Histograms are streaming: values land in exponentially-spaced buckets
(fixed relative width), so memory is bounded regardless of sample count
and quantile estimates carry a known relative error of at most one bucket
width.  Exact count/sum/min/max are tracked on the side.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing sum (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A last-value instrument with min/max envelope."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        """Fold ``other`` in: the envelope unions; the last value wins
        when this gauge was never set."""
        if other.updates == 0:
            return
        if self.value is None:
            self.value = other.value
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.updates += other.updates


class Histogram:
    """Streaming histogram over exponentially-spaced buckets.

    Bucket ``i`` holds values in ``(growth^(i-1), growth^i]`` (positive
    values); zero and negatives get dedicated buckets keyed by index on
    the mirrored scale.  The default growth of 1.05 bounds the relative
    quantile error at ~5%.
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "count",
                 "sum", "min", "max")

    def __init__(self, name: str, growth: float = 1.05):
        if growth <= 1.0:
            raise ValueError("bucket growth factor must be > 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # Keyspace layout (quantiles walk keys in sorted order, so the
    # ordering must match value ordering): negatives live near
    # ``_NEG_BASE`` with *larger* magnitudes mapping to *smaller* keys,
    # zero sits alone at ``_ZERO_KEY``, positives use the raw magnitude.
    # Double-precision magnitudes stay within ±16k of zero for any
    # growth >= 1.01, so the three bands can never touch.
    _ZERO_KEY = -(10 ** 9)
    _NEG_BASE = -(2 * 10 ** 9)

    def _key(self, value: float) -> int:
        if value == 0.0:
            return self._ZERO_KEY
        magnitude = int(math.ceil(math.log(abs(value)) / self._log_growth
                                  - 1e-12))
        return magnitude if value > 0.0 else self._NEG_BASE - magnitude

    def _bucket_value(self, key: int) -> float:
        """Representative value of a bucket (geometric midpoint)."""
        if key == self._ZERO_KEY:
            return 0.0
        if key < self._ZERO_KEY:
            return -self.growth ** (self._NEG_BASE - key - 0.5)
        return self.growth ** (key - 0.5)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name}: NaN observation")
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        key = self._key(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact at the extremes)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * (self.count - 1) + 1.0
        seen = 0
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen >= rank:
                # Clamp to the true envelope so tail estimates never
                # leave the observed range.
                return min(max(self._bucket_value(key), self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different "
                             "bucket growth factors")
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class MetricsRegistry:
    """A namespace of instruments, created on first use by name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, growth: float = 1.05) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, growth=growth)
        return inst

    def series_names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one, by name."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in other._histograms.items():
            self.histogram(name, growth=hist.growth).merge(hist)

    # -- reporting ------------------------------------------------------

    def rows(self) -> List[Tuple]:
        """(name, kind, count, value, mean, p50, p95, min, max) rows,
        sorted by name; non-applicable cells are None."""
        out: List[Tuple] = []
        for name, c in self._counters.items():
            out.append((name, "counter", None, c.value, None, None, None,
                        None, None))
        for name, g in self._gauges.items():
            if g.updates:
                out.append((name, "gauge", g.updates, g.value, None, None,
                            None, g.min, g.max))
        for name, h in self._histograms.items():
            if h.count:
                out.append((name, "histogram", h.count, None, h.mean,
                            h.quantile(0.5), h.quantile(0.95), h.min,
                            h.max))
        return sorted(out)

    def to_dict(self) -> Dict[str, dict]:
        """JSON-safe snapshot of every series."""
        out: Dict[str, dict] = {}
        for name, c in self._counters.items():
            out[name] = {"kind": "counter", "value": c.value}
        for name, g in self._gauges.items():
            out[name] = {"kind": "gauge", "value": g.value,
                         "min": (None if g.updates == 0 else g.min),
                         "max": (None if g.updates == 0 else g.max),
                         "updates": g.updates}
        for name, h in self._histograms.items():
            out[name] = {
                "kind": "histogram", "count": h.count, "sum": h.sum,
                "min": (None if h.count == 0 else h.min),
                "max": (None if h.count == 0 else h.max),
                "mean": (None if h.count == 0 else h.mean),
                "p50": (None if h.count == 0 else h.quantile(0.5)),
                "p90": (None if h.count == 0 else h.quantile(0.9)),
                "p99": (None if h.count == 0 else h.quantile(0.99)),
            }
        return out

    def summary_table(self) -> str:
        """Fixed-width human-readable table of all populated series."""
        header = (f"{'series':<28} {'kind':<9} {'count':>7} "
                  f"{'value/mean':>12} {'p50':>10} {'p95':>10} {'max':>10}")
        lines = [header, "-" * len(header)]
        for (name, kind, count, value, mean, p50, p95,
             _mn, mx) in self.rows():
            shown = value if value is not None else mean

            def fmt(x, width=10):
                return f"{x:>{width}.4g}" if x is not None else " " * width

            lines.append(f"{name:<28} {kind:<9} "
                         f"{count if count is not None else '':>7} "
                         f"{fmt(shown, 12)} {fmt(p50)} {fmt(p95)} "
                         f"{fmt(mx)}")
        return "\n".join(lines)


def merge_registries(registries: Iterable[MetricsRegistry]
                     ) -> MetricsRegistry:
    """A fresh registry holding the union of ``registries``."""
    total = MetricsRegistry()
    for reg in registries:
        total.merge(reg)
    return total
