"""Wall-clock profiler for the discrete-event kernel.

Answers "where does simulator wall-time go?" by accounting the real
(``perf_counter``) cost of every executed event callback, keyed by the
callback code object's ``module:qualname:lineno`` —
``mac:MacLayer._transmit_attempt.<locals>._begin:312`` and friends —
which maps one-to-one onto the kernel's event-handler types.  Keying on
the code object (not just ``__qualname__``) keeps distinct lambdas and
closures in distinct buckets: two ``<lambda>`` handlers defined on
different lines never collapse into one row.  Timing happens strictly
outside the seeded-RNG path: the profiler reads the wall clock and a
dict, so simulation results stay bit-identical whether or not it is
installed.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple


def _label_of(callback) -> str:
    """Stable handler-type label for an event callback.

    Functions, closures and bound methods are keyed by their code
    object's ``module:qualname:lineno`` so every distinct definition site
    gets its own bucket (lambdas all share the ``<lambda>`` qualname and
    are only told apart by line number).  Builtins and callable objects
    without a code object fall back to a type-level label.
    """
    if isinstance(callback, functools.partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)   # unwrap bound method
    code = getattr(func, "__code__", None)
    if code is not None:
        qualname = getattr(func, "__qualname__", code.co_name)
        module = getattr(func, "__module__", "") or ""
        short_mod = module.rsplit(".", 1)[-1]
        prefix = f"{short_mod}:" if short_mod else ""
        return f"{prefix}{qualname}:{code.co_firstlineno}"
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:   # builtins, callables with __call__
        qualname = getattr(type(callback), "__qualname__",
                           repr(type(callback)))
    module = getattr(callback, "__module__", "") or ""
    short_mod = module.rsplit(".", 1)[-1]
    return f"{short_mod}:{qualname}" if short_mod else qualname


class HandlerStats:
    """Accumulated wall-clock cost of one handler type."""

    __slots__ = ("label", "calls", "total_s", "max_s")

    def __init__(self, label: str):
        self.label = label
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_us(self) -> float:
        return (self.total_s / self.calls) * 1e6 if self.calls else 0.0


class KernelProfiler:
    """Per-handler-type wall-clock accounting for a :class:`Simulator`.

    Install with :meth:`install` (sets ``sim.profiler``); the kernel then
    times every event callback through :meth:`record`.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, HandlerStats] = {}
        self._label_cache: Dict[int, str] = {}
        self.events_timed = 0
        self.total_s = 0.0
        self._sim = None

    # -- lifecycle ------------------------------------------------------

    def install(self, sim) -> "KernelProfiler":
        if sim.profiler is not None:
            raise RuntimeError("simulator already has a profiler")
        sim.profiler = self
        self._sim = sim
        return self

    def uninstall(self) -> None:
        if self._sim is not None and self._sim.profiler is self:
            self._sim.profiler = None
        self._sim = None

    # -- recording (called by the kernel) -------------------------------

    def record(self, callback, elapsed_s: float) -> None:
        # Cache labels by code-object id: closures are re-created per
        # scheduling but share their code, so the string work happens
        # once per handler type, not once per event.  Partials and bound
        # methods are unwrapped first — keying a partial by its own type
        # would fold every partial-wrapped handler into one bucket.
        func = callback
        if isinstance(func, functools.partial):
            func = func.func
        func = getattr(func, "__func__", func)
        code = getattr(func, "__code__", None)
        key = id(code) if code is not None else id(type(callback))
        label = self._label_cache.get(key)
        if label is None:
            label = self._label_cache[key] = _label_of(callback)
        stats = self._stats.get(label)
        if stats is None:
            stats = self._stats[label] = HandlerStats(label)
        stats.calls += 1
        stats.total_s += elapsed_s
        stats.max_s = max(stats.max_s, elapsed_s)
        self.events_timed += 1
        self.total_s += elapsed_s

    # -- reporting ------------------------------------------------------

    def hotspots(self, top: int = 10) -> List[HandlerStats]:
        """The ``top`` handler types by total wall-clock cost."""
        ranked = sorted(self._stats.values(),
                        key=lambda s: s.total_s, reverse=True)
        return ranked[:top]

    def to_rows(self, top: Optional[int] = None
                ) -> List[Tuple[str, int, float, float, float]]:
        """(label, calls, total_s, mean_us, share) rows, hottest first."""
        total = self.total_s or 1.0
        return [(s.label, s.calls, s.total_s, s.mean_us, s.total_s / total)
                for s in self.hotspots(top if top is not None
                                       else len(self._stats))]

    def report(self, top: int = 10) -> str:
        """Human-readable top-N hotspot table."""
        header = (f"{'handler':<48} {'calls':>9} {'total ms':>10} "
                  f"{'mean µs':>9} {'share':>7}")
        lines = [f"kernel profile: {self.events_timed} events, "
                 f"{self.total_s * 1e3:.2f} ms handler wall-time",
                 header, "-" * len(header)]
        for label, calls, total_s, mean_us, share in self.to_rows(top):
            lines.append(f"{label:<48} {calls:>9} {total_s * 1e3:>10.3f} "
                         f"{mean_us:>9.2f} {share:>6.1%}")
        return "\n".join(lines)
