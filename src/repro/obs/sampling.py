"""Tail-based query sampling: keep the interesting traces, drop the rest.

At 50k nodes or under soak traffic, full-fidelity span capture for every
query is the dominant telemetry cost — yet almost all of that detail
describes queries that finished fine.  Tail sampling inverts the
decision point: spans, instants and high-cardinality histogram
observations are *buffered per query* in a bounded staging area while
the query runs, and the keep/drop decision happens at finalization, when
the outcome is known:

* queries ending in TIMEOUT / FAILED / SHED / PARTIAL are always
  promoted (kept at full fidelity), as is any query flagged mid-flight
  (a ``repro.validate`` checker tripped, a circuit breaker opened);
* COMPLETE queries are promoted 1-in-N, drawn from the dedicated
  ``obs.sampling`` RNG stream — no simulation code reads that stream,
  so golden digests are bit-identical with sampling on or off.

Staging keys are opaque tuples: ``("q", query_id)`` for bare protocol
queries, ``("s", service_id)`` for served queries.  A served query's
protocol attempts are *aliased* onto their service key, so promotion
keeps the whole serve tree (service span plus every attempt's span
tree) or none of it.

The staging area is bounded (``max_staged``): on overflow the oldest
unflagged staged query is evicted — its buffered record is discarded
immediately and it can no longer be promoted — and the eviction is
counted loudly in ``obs.sampling.evicted``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .spans import Instant, SpanTracker

#: name of the dedicated RNG stream the 1-in-N draw reads
SAMPLING_STREAM = "obs.sampling"

Key = Tuple[str, int]


@dataclass(frozen=True)
class SamplingPolicy:
    """Knobs of the tail sampler."""

    #: promote 1 in ``sample_every_n`` COMPLETE queries (1 = keep all)
    sample_every_n: int = 10
    #: staging bound: total buffered spans+instants across open queries
    max_staged: int = 10_000

    def __post_init__(self) -> None:
        if self.sample_every_n < 1:
            raise ValueError("sample_every_n must be >= 1")
        if self.max_staged < 1:
            raise ValueError("max_staged must be >= 1")


@dataclass
class _Staged:
    """The buffered record of one not-yet-finalized query."""

    span_ids: List[int] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    #: deferred histogram observations [(series, value), ...]
    observations: List[Tuple[str, float]] = field(default_factory=list)
    flags: List[str] = field(default_factory=list)
    #: attempt keys aliased onto this one (served-query attempts)
    aliases: List[Key] = field(default_factory=list)
    evicted: bool = False

    @property
    def size(self) -> int:
        return len(self.span_ids) + len(self.instants)


class TailSampler:
    """Buffers per-query telemetry and promotes or discards it at
    finalization.  All decisions draw only from the ``obs.sampling``
    stream, so attaching a sampler never perturbs simulation RNG."""

    def __init__(self, policy: SamplingPolicy, rng,
                 metrics: MetricsRegistry, spans: SpanTracker):
        self.policy = policy
        self._rng = rng
        self._metrics = metrics
        self._spans = spans
        self._staged: "OrderedDict[Key, _Staged]" = OrderedDict()
        self._alias: Dict[Key, Key] = {}
        self._staged_size = 0

    # -- staging --------------------------------------------------------

    @property
    def staged_count(self) -> int:
        """Queries currently buffered (awaiting their outcome)."""
        return len(self._staged)

    def resolve(self, key: Key) -> Key:
        return self._alias.get(key, key)

    def is_staged(self, key: Key) -> bool:
        return self.resolve(key) in self._staged

    def open(self, key: Key) -> None:
        """Start buffering a query (idempotent)."""
        if key not in self._staged:
            self._staged[key] = _Staged()

    def adopt(self, attempt_key: Key, owner_key: Key) -> None:
        """Alias a protocol attempt onto its owning served query, so the
        attempt's spans ride the owner's promote/discard decision."""
        self._alias[attempt_key] = owner_key
        owner = self._staged.get(owner_key)
        if owner is not None:
            owner.aliases.append(attempt_key)

    def note_span(self, key: Key, span_id: int) -> bool:
        """Buffer a span id under ``key``; False if the key is not
        staged (caller keeps the span unconditionally)."""
        staged = self._staged.get(self.resolve(key))
        if staged is None:
            return False
        staged.span_ids.append(span_id)
        self._staged_size += 1
        self._maybe_evict()
        return True

    def note_instant(self, key: Key, inst: Instant) -> bool:
        staged = self._staged.get(self.resolve(key))
        if staged is None:
            return False
        staged.instants.append(inst)
        self._staged_size += 1
        self._maybe_evict()
        return True

    def buffer(self, key: Key, series: str, value: float) -> bool:
        """Defer a histogram observation until the keep/drop decision;
        False if the key is not staged (caller observes directly)."""
        staged = self._staged.get(self.resolve(key))
        if staged is None:
            return False
        staged.observations.append((series, value))
        return True

    def flag(self, key: Key, reason: str) -> None:
        """Force promotion of a staged query (validate trip, breaker
        open); a no-op for unknown keys."""
        staged = self._staged.get(self.resolve(key))
        if staged is not None:
            staged.flags.append(reason)
            self._metrics.counter("obs.sampling.flagged").inc()

    def _maybe_evict(self) -> None:
        while self._staged_size > self.policy.max_staged:
            victim = next((s for s in self._staged.values()
                           if not s.flags and not s.evicted), None)
            if victim is None:
                return  # everything left is flagged; bound goes soft
            victim.evicted = True
            self._metrics.counter("obs.sampling.evicted").inc()
            # Gut the record now; open spans keep their live ids (their
            # ends must still resolve) and go with the final discard.
            self._spans.discard(victim.span_ids, victim.instants)
            self._staged_size -= victim.size
            victim.span_ids = [sid for sid in victim.span_ids
                               if self._spans.is_open(sid)]
            victim.instants = []
            victim.observations = []
            self._staged_size += victim.size

    # -- decision -------------------------------------------------------

    def finalize(self, key: Key, complete: bool) -> Optional[bool]:
        """Decide a staged query's fate; returns True (promoted), False
        (discarded) or None when ``key`` was never staged."""
        key = self.resolve(key)
        staged = self._staged.pop(key, None)
        if staged is None:
            return None
        for alias in staged.aliases:
            self._alias.pop(alias, None)
        self._staged_size -= staged.size
        promote = not staged.evicted and (bool(staged.flags)
                                          or not complete)
        if not promote and not staged.evicted:
            n = self.policy.sample_every_n
            promote = n == 1 or int(self._rng.integers(n)) == 0
        if promote:
            self._metrics.counter("obs.sampling.promoted").inc()
            for series, value in staged.observations:
                self._metrics.histogram(series).observe(value)
        else:
            self._metrics.counter("obs.sampling.discarded").inc()
            self._metrics.counter("obs.sampling.dropped_spans").inc(
                len(staged.span_ids) + len(staged.instants))
            self._spans.discard(staged.span_ids, staged.instants)
        return promote

    # -- reporting ------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        counters = {
            name: int(self._metrics.counter(f"obs.sampling.{name}").value)
            for name in ("promoted", "discarded", "flagged", "evicted")}
        return {"sample_every_n": self.policy.sample_every_n,
                "staged": self.staged_count, **counters}
