"""Telemetry exporters: JSONL raw events, CSV metrics, Chrome trace JSON.

The Chrome trace export follows the Trace Event Format consumed by
Perfetto (ui.perfetto.dev) and ``chrome://tracing``: one process (the
simulation), one thread *track per node*, spans as complete (``"X"``)
slices over simulated microseconds, instants as ``"i"`` markers.  Load
the file straight into Perfetto to scrub through a run visually.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

from .events import open_text
from .spans import SpanTracker

#: tid used for events not tied to any node (query-global markers)
_GLOBAL_TID = -1
#: dedicated track for the serving layer: service spans, breaker
#: transitions and SLO alerts render on one row instead of scattering
#: across per-node tracks
_SERVICE_TID = -2

_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n",
                 "s", "t", "f"}


def _tid(node, category=None) -> int:
    if category == "service":
        return _SERVICE_TID
    return _GLOBAL_TID if node is None else int(node)


def _args(query_id, attrs: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    if query_id is not None:
        out["query_id"] = query_id
    for key, value in attrs.items():
        out[key] = (value if isinstance(value, (int, float, str, bool,
                                                type(None)))
                    else repr(value))
    return out


def chrome_trace_events(spans: SpanTracker) -> List[dict]:
    """Trace Event Format dicts for a recorded span tree."""
    events: List[dict] = []
    tids = sorted({_tid(s.node, s.category) for s in spans.spans}
                  | {_tid(i.node, i.category) for i in spans.instants})
    events.append({"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                   "args": {"name": "repro simulation"}})
    for tid in tids:
        if tid == _SERVICE_TID:
            name = "service"
        elif tid == _GLOBAL_TID:
            name = "(global)"
        else:
            name = f"node {tid}"
        events.append({"ph": "M", "name": "thread_name", "pid": 0,
                       "tid": tid, "args": {"name": name}})
        # Sort tracks by node id in the UI (service first).
        events.append({"ph": "M", "name": "thread_sort_index", "pid": 0,
                       "tid": tid, "args": {"sort_index": tid}})
    for span in spans.spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "ph": "X", "name": span.name, "cat": span.category,
            "ts": span.start * 1e6, "dur": (end - span.start) * 1e6,
            "pid": 0, "tid": _tid(span.node, span.category),
            "args": _args(span.query_id, span.attrs),
        })
    for inst in spans.instants:
        events.append({
            "ph": "i", "name": inst.name, "ts": inst.time * 1e6,
            "pid": 0, "tid": _tid(inst.node, inst.category), "s": "t",
            "args": _args(inst.query_id, inst.attrs),
        })
    return events


def export_chrome_trace(telemetry, path: str) -> int:
    """Write a Perfetto-loadable trace file; returns the event count.

    ``ts`` is simulated time in microseconds (the format's native unit),
    so slice durations read directly as simulated latencies.
    """
    telemetry.finalize()
    events = chrome_trace_events(telemetry.spans)
    with open_text(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  handle)
    return len(events)


def validate_chrome_trace(data) -> List[str]:
    """Structural problems with a Chrome trace document (empty = valid).

    Accepts the JSON Object Format (``{"traceEvents": [...]}``) or the
    bare JSON Array Format; checks every event for a known ``ph`` and
    well-formed ``ts``/``pid``/``tid`` fields.
    """
    problems: List[str] = []
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            return ["document has no 'traceEvents' array"]
    elif isinstance(data, list):
        events = data
    else:
        return ["document is neither an object nor an array"]
    for i, event in enumerate(events):
        tag = f"event {i}"
        if not isinstance(event, dict):
            problems.append(f"{tag} is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            problems.append(f"{tag} has invalid ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{tag} ({phase}) has no name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{tag} ({event.get('name')}) has "
                                f"non-integer {field}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{tag} ({event.get('name')}) has invalid "
                            f"ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{tag} ({event.get('name')}) has "
                                f"invalid dur {dur!r}")
    return problems


def export_jsonl(telemetry, path: str) -> int:
    """Write the raw network event stream as JSON lines; returns the
    entry count (0 when raw-event capture was off)."""
    if telemetry.events is None:
        with open_text(path, "w"):
            pass
        return 0
    return telemetry.events.to_jsonl(path)


def export_metrics_csv(telemetry, path: str) -> int:
    """Write the metrics registry as CSV rows; returns the series count."""
    telemetry.finalize()
    rows = telemetry.metrics.rows()
    with open_text(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "kind", "count", "value", "mean",
                         "p50", "p95", "min", "max"])
        for row in rows:
            writer.writerow(["" if cell is None else cell
                             for cell in row])
    return len(rows)
