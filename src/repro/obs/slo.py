"""Declarative SLO monitoring over rolling sim-time windows.

An :class:`SloSpec` states an objective the way an operator would — "95%
of queries answer usefully" (availability) or "95% of queries finish
under 5 s" (latency) — and an :class:`SloMonitor` evaluates it over a
rolling window of simulated time, bucketed so old traffic ages out.

The alerting signal is the **burn rate**: the fraction of the error
budget (``1 - target``) the current window is consuming.  A burn of 1.0
means failing at exactly the tolerated rate; a regional blackout that
fails 40% of queries against a 5% budget burns at 8x and pages
immediately.  Alerts fire on bucket boundaries (at most a handful of
evaluations per window), emit into the attached telemetry trace and
flight recorder, and resolve when the burn drops back under threshold.

Latency monitors additionally keep a streaming-histogram shard per
window bucket; the windowed percentile in alerts and summaries comes
from merging the shards — which is exactly why histogram merges must be
order-independent.

Everything here is pure observation on the sim clock: no RNG, no
scheduling, so an SLO-monitored run is bit-identical to a bare one.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .metrics import Histogram

#: window buckets per monitor (granularity of the rolling window)
_N_BUCKETS = 6


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective."""

    name: str
    #: "availability" (outcome is useful) or "latency" (useful and
    #: finished under ``threshold_s``)
    kind: str
    #: required good fraction over the window; error budget is 1-target
    target: float = 0.95
    #: latency kind: the per-query duration bound
    threshold_s: float = 5.0
    #: rolling window length in simulated seconds
    window_s: float = 20.0
    #: burn rate at/above which the alert fires (1.0 = budget exactly)
    burn_alert: float = 1.0
    #: minimum events in the window before evaluating (noise gate)
    min_events: int = 10

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must lie in (0, 1)")
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.burn_alert <= 0:
            raise ValueError("burn_alert must be positive")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")


class _Bucket:
    """Good/bad counts (and a latency shard) of one window slice."""

    __slots__ = ("index", "good", "bad", "shard")

    def __init__(self, index: int, with_shard: bool):
        self.index = index
        self.good = 0
        self.bad = 0
        self.shard: Optional[Histogram] = (
            Histogram("shard") if with_shard else None)


class SloMonitor:
    """Rolling-window evaluation of one :class:`SloSpec`."""

    def __init__(self, spec: SloSpec,
                 on_alert: Optional[Callable[["SloMonitor", dict],
                                             None]] = None):
        self.spec = spec
        self._bucket_s = spec.window_s / _N_BUCKETS
        self._buckets: "deque[_Bucket]" = deque()
        self._on_alert = on_alert
        self.alerting = False
        self.alerts: List[dict] = []
        self.events = 0
        self.good = 0
        self.worst_burn = 0.0

    # -- feeding --------------------------------------------------------

    def record(self, now: float, good: bool,
               latency_s: Optional[float] = None) -> None:
        index = int(now // self._bucket_s)
        if self._buckets and index > self._buckets[-1].index:
            # a bucket boundary passed: evaluate the closed window
            self._evaluate(now)
        if not self._buckets or self._buckets[-1].index != index:
            self._buckets.append(
                _Bucket(index, self.spec.kind == "latency"))
            while self._buckets[0].index <= index - _N_BUCKETS:
                self._buckets.popleft()
        bucket = self._buckets[-1]
        self.events += 1
        if good:
            bucket.good += 1
            self.good += 1
        else:
            bucket.bad += 1
        if bucket.shard is not None and latency_s is not None:
            bucket.shard.observe(latency_s)

    # -- evaluation -----------------------------------------------------

    def window_counts(self) -> "tuple[int, int]":
        good = sum(b.good for b in self._buckets)
        bad = sum(b.bad for b in self._buckets)
        return good, bad

    def window_quantile(self) -> float:
        """Windowed ``target``-quantile latency from the merged shards
        (NaN for availability monitors or an empty window)."""
        merged: Optional[Histogram] = None
        for bucket in self._buckets:
            if bucket.shard is None or bucket.shard.count == 0:
                continue
            if merged is None:
                merged = Histogram("window")
            merged.merge(bucket.shard)
        if merged is None:
            return math.nan
        return merged.quantile(self.spec.target)

    def burn_rate(self) -> float:
        good, bad = self.window_counts()
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.spec.target)

    def _evaluate(self, now: float) -> None:
        good, bad = self.window_counts()
        if good + bad < self.spec.min_events:
            return
        burn = self.burn_rate()
        self.worst_burn = max(self.worst_burn, burn)
        if burn >= self.spec.burn_alert and not self.alerting:
            self.alerting = True
            alert = {"slo": self.spec.name, "kind": self.spec.kind,
                     "time": now, "burn": round(burn, 3),
                     "window_good": good, "window_bad": bad}
            quantile = self.window_quantile()
            if not math.isnan(quantile):
                alert[f"p{self.spec.target * 100:g}_s"] = round(quantile, 4)
            self.alerts.append(alert)
            if self._on_alert is not None:
                self._on_alert(self, alert)
        elif burn < self.spec.burn_alert and self.alerting:
            self.alerting = False
            if self._on_alert is not None:
                self._on_alert(self, {"slo": self.spec.name,
                                      "resolved": True, "time": now,
                                      "burn": round(burn, 3)})

    def finalize(self, now: float) -> None:
        """Evaluate once more at end of run (last partial bucket)."""
        if self._buckets:
            self._evaluate(now)

    # -- reporting ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.spec.name, "kind": self.spec.kind,
                "target": self.spec.target,
                "events": self.events,
                "good_fraction": (round(self.good / self.events, 4)
                                  if self.events else None),
                "alerts": len(self.alerts),
                "alerting": self.alerting,
                "worst_burn": round(self.worst_burn, 3)}


class SloBoard:
    """A set of monitors fed from one outcome stream, with alert events
    fanned out to metrics / telemetry / flight-recorder sinks."""

    def __init__(self, specs: List[SloSpec], metrics=None, obs=None,
                 flight=None):
        self.monitors = [SloMonitor(spec, on_alert=self._emit)
                         for spec in specs]
        self._metrics = metrics
        self._obs = obs
        self._flight = flight

    def record_outcome(self, now: float, useful: bool,
                       latency_s: Optional[float]) -> None:
        for monitor in self.monitors:
            if monitor.spec.kind == "availability":
                monitor.record(now, useful)
            else:
                good = (useful and latency_s is not None
                        and latency_s <= monitor.spec.threshold_s)
                monitor.record(now, good, latency_s=latency_s)

    def _emit(self, monitor: SloMonitor, event: dict) -> None:
        resolved = bool(event.get("resolved"))
        if self._metrics is not None and not resolved:
            self._metrics.counter(
                f"slo.{monitor.spec.name}.alerts").inc()
        if self._obs is not None:
            name = ("slo alert resolved" if resolved
                    else "slo burn alert")
            self._obs.spans.instant(
                name, at=event["time"], category="service",
                slo=monitor.spec.name, burn=event["burn"])
        if self._flight is not None:
            fields = {k: v for k, v in event.items() if k != "time"}
            self._flight.note(event["time"], "slo", **fields)

    def finalize(self, now: float) -> None:
        for monitor in self.monitors:
            monitor.finalize(now)

    @property
    def alerts(self) -> List[dict]:
        out = []
        for monitor in self.monitors:
            out.extend(monitor.alerts)
        return sorted(out, key=lambda a: (a["time"], a["slo"]))

    def to_dict(self) -> Dict[str, object]:
        return {m.spec.name: m.to_dict() for m in self.monitors}

    def table(self) -> str:
        header = (f"{'slo':<16} {'kind':<13} {'target':>7} {'events':>7} "
                  f"{'good%':>7} {'alerts':>7} {'worst burn':>11}")
        lines = [header, "-" * len(header)]
        for monitor in self.monitors:
            d = monitor.to_dict()
            good = (f"{d['good_fraction'] * 100:.1f}"
                    if d["good_fraction"] is not None else "")
            lines.append(
                f"{d['name']:<16} {d['kind']:<13} "
                f"{d['target'] * 100:>6.1f}% {d['events']:>7} "
                f"{good:>7} {d['alerts']:>7} {d['worst_burn']:>10.2f}x")
        return "\n".join(lines)
