"""Hierarchical spans over simulated time (the query-lifecycle tree).

A *span* is a named interval of simulated time attached to a node and —
for protocol spans — a query, with an optional parent link.  A whole KNN
query renders as one tree:

    query q7                         (sink, issue -> finalize)
    ├── route                        (sink -> home node, info gathering)
    ├── sector 0                     (dispatch -> bundle at sink)
    │   ├── window @node 12          (collection window of one Q-node)
    │   ├── window @node 31
    │   └── return                   (bundle routed back to the sink)
    ├── sector 1 ...
    └── ...

Span timestamps come from the simulation clock, never the wall clock, so
an instrumented run records exactly what an uninstrumented one executed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class Span:
    """One interval in the span tree."""

    span_id: int
    name: str
    category: str                 # "query" | "route" | "sector" | ...
    start: float                  # simulated seconds
    node: Optional[int] = None    # acting node (Chrome-trace track)
    query_id: Optional[int] = None
    parent_id: Optional[int] = None
    end: Optional[float] = None   # None while open
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            return math.nan
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (retry fired, watchdog re-dispatch, ...)."""

    name: str
    time: float
    node: Optional[int] = None
    query_id: Optional[int] = None
    category: Optional[str] = None   # "service" renders on its own track
    attrs: Dict[str, object] = field(default_factory=dict)


class SpanTracker:
    """Records spans and instants; validates tree integrity."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def begin(self, name: str, category: str, at: float,
              node: Optional[int] = None, query_id: Optional[int] = None,
              parent: Optional[int] = None, **attrs) -> int:
        """Open a span starting ``at``; returns its id."""
        if parent is not None:
            parent_span = self._by_id.get(parent)
            if parent_span is None:
                raise ValueError(f"unknown parent span id {parent}")
            if at < parent_span.start - 1e-12:
                raise ValueError(
                    f"child span {name!r} starts at {at} before its "
                    f"parent {parent_span.name!r} at {parent_span.start}")
        span = Span(span_id=self._next_id, name=name, category=category,
                    start=at, node=node, query_id=query_id,
                    parent_id=parent, attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, at: float, **attrs) -> Span:
        """Close an open span at ``at``; extra attrs are merged in."""
        span = self._by_id.get(span_id)
        if span is None:
            raise ValueError(f"unknown span id {span_id}")
        if span.end is not None:
            raise ValueError(f"span {span.name!r} (#{span_id}) is "
                             "already closed")
        if at < span.start - 1e-12:
            raise ValueError(f"span {span.name!r} cannot end at {at} "
                             f"before its start {span.start}")
        span.end = at
        span.attrs.update(attrs)
        return span

    def instant(self, name: str, at: float, node: Optional[int] = None,
                query_id: Optional[int] = None,
                category: Optional[str] = None, **attrs) -> Instant:
        inst = Instant(name=name, time=at, node=node, query_id=query_id,
                       category=category, attrs=dict(attrs))
        self.instants.append(inst)
        return inst

    def discard(self, span_ids: Iterable[int] = (),
                instants: Iterable[Instant] = ()) -> int:
        """Drop spans (by id) and instants (by identity) from the record.

        The tail sampler calls this for queries it decides not to keep;
        open spans cannot be discarded (their owners still hold live ids
        that ``end`` must resolve).  Returns the number of objects
        removed.
        """
        drop = {sid for sid in span_ids if not self.is_open(sid)}
        removed = 0
        if drop:
            kept = [s for s in self.spans if s.span_id not in drop]
            removed += len(self.spans) - len(kept)
            self.spans = kept
            for sid in drop:
                self._by_id.pop(sid, None)
        gone = {id(inst) for inst in instants}
        if gone:
            kept_i = [i for i in self.instants if id(i) not in gone]
            removed += len(self.instants) - len(kept_i)
            self.instants = kept_i
        return removed

    # -- queries --------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def is_open(self, span_id: int) -> bool:
        span = self._by_id.get(span_id)
        return span is not None and span.end is None

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is None]

    def for_query(self, query_id: int) -> List[Span]:
        return [s for s in self.spans if s.query_id == query_id]

    def roots(self, query_id: Optional[int] = None) -> List[Span]:
        out = [s for s in self.spans if s.parent_id is None]
        if query_id is not None:
            out = [s for s in out if s.query_id == query_id]
        return out

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def tree_lines(self, query_id: int) -> List[str]:
        """Indented rendering of one query's span tree."""
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            dur = ("open" if span.end is None
                   else f"{span.duration * 1e3:.2f} ms")
            where = f" @node {span.node}" if span.node is not None else ""
            lines.append(f"{'  ' * depth}{span.name}{where} [{dur}]")
            for child in self.children(span.span_id):
                walk(child, depth + 1)

        for root in self.roots(query_id):
            walk(root, 0)
        return lines

    # -- integrity ------------------------------------------------------

    def check_integrity(self) -> List[str]:
        """Structural problems with the recorded tree (empty = sound):
        every span closed, parents exist and precede (and contain) their
        children, no dangling parent ids."""
        problems: List[str] = []
        for span in self.spans:
            tag = f"span #{span.span_id} {span.name!r}"
            if span.end is None:
                problems.append(f"{tag} was never closed")
            if span.parent_id is None:
                continue
            parent = self._by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"{tag} has dangling parent id "
                                f"{span.parent_id}")
                continue
            if parent.start > span.start + 1e-12:
                problems.append(f"{tag} starts before its parent "
                                f"{parent.name!r}")
            if (parent.end is not None and span.end is not None
                    and span.end > parent.end + 1e-9):
                problems.append(f"{tag} ends after its parent "
                                f"{parent.name!r}")
            if span.query_id != parent.query_id:
                problems.append(f"{tag} belongs to query {span.query_id} "
                                f"but its parent to {parent.query_id}")
        return problems
