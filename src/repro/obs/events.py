"""Raw-event layer of the telemetry subsystem (the ns-2 trace file).

The paper visualized query execution by modifying ns-2's trace format
(§5.2).  ``TraceLog`` is the equivalent here: it hooks the network's
send/deliver events, records them as structured entries with timestamps,
and can export JSON-lines for external analysis.  Query tools on top of
the in-memory log answer the questions the figures need (per-kind counts,
per-query timelines, hop chains).

This module is the bottom of the ``repro.obs`` stack: spans, metrics and
the exporters are all derived views; ``TraceLog`` is the ground truth
stream the golden-trace digests fingerprint.  (It originally lived at
``repro.net.tracelog``, which remains as a compatibility re-export.)
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional


def open_text(path, mode: str = "r", newline: Optional[str] = None):
    """Open a text file, transparently gzip-compressed when the path
    ends in ``.gz`` — 50k-node soak artifacts compress ~20x, and every
    exporter/reader in ``repro.obs`` routes through here so ``.jsonl``
    and ``.jsonl.gz`` are interchangeable."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8",
                         newline=newline)
    return open(path, mode, encoding="utf-8", newline=newline)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.messages import Message
    from ..net.network import Network


@dataclass(frozen=True)
class TraceEntry:
    """One logged event."""

    time: float
    event: str        # "send" | "deliver"
    kind: str         # message kind; GPSR frames use "gpsr:<inner-kind>"
    node: int         # acting node (sender or receiver)
    src: int
    dst: int
    size_bytes: int
    query_id: Optional[int] = None


_MAX_PAYLOAD_DEPTH = 8


def _query_id_of(message: Message) -> Optional[int]:
    """Extract the query id, descending through arbitrarily nested
    ``inner``/``token`` payloads (a GPSR frame wrapped in another GPSR
    frame still belongs to its query)."""
    payload = message.payload
    depth = 0
    while isinstance(payload, dict) and depth < _MAX_PAYLOAD_DEPTH:
        if "query_id" in payload:
            return payload["query_id"]
        token = payload.get("token")
        if isinstance(token, dict) and "query_id" in token:
            return token["query_id"]
        payload = payload.get("inner")
        depth += 1
    return None


def _kind_of(message: Message) -> str:
    if message.kind == "gpsr":
        return f"gpsr:{message.payload.get('inner_kind', '?')}"
    return message.kind


def entry_to_wire(entry: TraceEntry) -> dict:
    """Entry as a JSON-safe dict with the declared field types enforced.

    Payload values extracted from protocol dicts can arrive as numpy
    scalars (``np.int64`` is not JSON-serializable) or as int-valued
    Python ints where the dataclass declares float; coercing here keeps
    the wire format — and therefore digests of re-read traces — stable.
    """
    return {
        "time": float(entry.time),
        "event": str(entry.event),
        "kind": str(entry.kind),
        "node": int(entry.node),
        "src": int(entry.src),
        "dst": int(entry.dst),
        "size_bytes": int(entry.size_bytes),
        "query_id": (None if entry.query_id is None
                     else int(entry.query_id)),
    }


def entry_from_wire(data: dict) -> TraceEntry:
    """Inverse of :func:`entry_to_wire`, with the same type coercion so a
    round trip through JSON preserves ints-vs-floats exactly."""
    return TraceEntry(
        time=float(data["time"]), event=str(data["event"]),
        kind=str(data["kind"]), node=int(data["node"]),
        src=int(data["src"]), dst=int(data["dst"]),
        size_bytes=int(data["size_bytes"]),
        query_id=(None if data.get("query_id") is None
                  else int(data["query_id"])))


class TraceLog:
    """In-memory structured trace attached to a network."""

    def __init__(self, network: "Network",
                 kinds: Optional[Iterable[str]] = None,
                 max_entries: int = 1_000_000):
        """
        Args:
            network: the network to trace.
            kinds: restrict logging to these (post-expansion) kinds;
                None logs everything except beacons.
            max_entries: hard cap (oldest entries are NOT evicted; logging
                simply stops — a trace that silently rotates is worse than
                one that visibly ends).
        """
        self.network = network
        self.kinds = set(kinds) if kinds is not None else None
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self.truncated = False
        network.add_trace_hook(self._hook)

    def _hook(self, event: str, message: Message, node_id: int) -> None:
        if len(self.entries) >= self.max_entries:
            self.truncated = True
            return
        kind = _kind_of(message)
        if self.kinds is not None and kind not in self.kinds:
            return
        self.entries.append(TraceEntry(
            time=self.network.sim.now, event=event, kind=kind,
            node=node_id, src=message.src, dst=message.dst,
            size_bytes=message.size_bytes,
            query_id=_query_id_of(message)))

    def detach(self) -> None:
        """Stop recording (removes the network hook; idempotent)."""
        hooks = self.network._trace_hooks
        if self._hook in hooks:
            hooks.remove(self._hook)

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def counts_by_kind(self, event: str = "send") -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.entries:
            if entry.event == event:
                out[entry.kind] = out.get(entry.kind, 0) + 1
        return out

    def bytes_by_kind(self, event: str = "send") -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.entries:
            if entry.event == event:
                out[entry.kind] = out.get(entry.kind, 0) + entry.size_bytes
        return out

    def for_query(self, query_id: int) -> List[TraceEntry]:
        """Chronological events of one query."""
        return [e for e in self.entries if e.query_id == query_id]

    def query_span(self, query_id: int) -> Optional[float]:
        """Simulated time from a query's first to last logged event.

        A query with a single logged event has a span of ``0.0``; only a
        query with *no* logged events yields ``None``.
        """
        events = self.for_query(query_id)
        if not events:
            return None
        return events[-1].time - events[0].time

    def filtered(self, predicate: Callable[[TraceEntry], bool]
                 ) -> List[TraceEntry]:
        return [e for e in self.entries if predicate(e)]

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write all entries as JSON lines (gzipped for ``.gz`` paths);
        returns the entry count."""
        with open_text(path, "w") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry_to_wire(entry)) + "\n")
        return len(self.entries)

    @staticmethod
    def read_jsonl(path: str) -> List[TraceEntry]:
        """Load entries written by :meth:`to_jsonl` (``.gz`` aware)."""
        out = []
        with open_text(path, "r") as handle:
            for line in handle:
                if line.strip():
                    out.append(entry_from_wire(json.loads(line)))
        return out
