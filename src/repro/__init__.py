"""repro — reproduction of DIKNN (Wu, Chuang, Chen & Chen, ICDE 2007).

An itinerary-based KNN query processing algorithm for mobile sensor
networks, together with the full simulation substrate it is evaluated on:
a discrete-event kernel, an abstract CSMA MAC with energy accounting,
random-waypoint mobility, GPSR geographic routing, and the KPT and
Peer-tree competitor protocols.

Quickstart::

    from repro import SimulationConfig, build_simulation, DIKNNProtocol
    from repro import run_query, Vec2

    handle = build_simulation(SimulationConfig(seed=7), DIKNNProtocol())
    handle.warm_up()
    outcome = run_query(handle, Vec2(60, 60), k=20)
    print(outcome.latency, outcome.pre_accuracy, outcome.energy_j)
"""

from .baselines import (FloodingConfig, FloodingProtocol, KPTConfig,
                        KPTProtocol, PeerTreeConfig, PeerTreeProtocol)
from .core import (DIKNNConfig, DIKNNProtocol, KNNQuery, QueryIdAllocator,
                   QueryProtocol, QueryResult, knnb_radius, next_query_id,
                   per_run_allocator)
from .experiments import (SimulationConfig, SimulationHandle,
                          build_simulation, defaults_table, fig8_sweep,
                          fig9_sweep, resilience_sweep, run_query,
                          run_workload)
from .faults import FaultInjector, FaultPlan
from .geometry import Rect, Vec2
from .metrics import (QueryOutcome, RunMetrics, post_accuracy, pre_accuracy,
                      true_knn)
from .net import Network, SensorNode
from .obs import (KernelProfiler, MetricsRegistry, SpanTracker, Telemetry,
                  TraceLog, enable_observability)
from .routing import GpsrRouter
from .service import (Outcome, QueryService, ServiceConfig, ServiceReport,
                      run_service_soak)
from .sim import Simulator
from .validate import (InvariantViolation, ValidationHarness,
                       enable_validation)

__version__ = "1.0.0"

__all__ = [
    "FloodingConfig", "FloodingProtocol", "KPTConfig", "KPTProtocol",
    "PeerTreeConfig", "PeerTreeProtocol", "DIKNNConfig", "DIKNNProtocol",
    "KNNQuery", "QueryIdAllocator", "QueryProtocol", "QueryResult",
    "knnb_radius", "next_query_id", "per_run_allocator",
    "SimulationConfig", "SimulationHandle",
    "build_simulation", "defaults_table", "fig8_sweep", "fig9_sweep",
    "resilience_sweep", "FaultInjector", "FaultPlan",
    "run_query", "run_workload", "Rect", "Vec2", "QueryOutcome",
    "RunMetrics", "post_accuracy", "pre_accuracy", "true_knn", "Network",
    "SensorNode", "GpsrRouter", "Outcome", "QueryService", "ServiceConfig",
    "ServiceReport", "run_service_soak", "Simulator", "InvariantViolation",
    "ValidationHarness", "enable_validation", "KernelProfiler",
    "MetricsRegistry", "SpanTracker", "Telemetry", "TraceLog",
    "enable_observability", "__version__",
]
