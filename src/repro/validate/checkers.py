"""The invariant checkers.

Five families, one per substrate layer:

* **event-causality** — the kernel clock is monotone and every executed
  event runs exactly at its scheduled time.
* **energy-conservation** — every ledger account equals the sum of the
  tx/rx/idle charges actually made against it (shadow accounting), and no
  charge is negative or non-finite.
* **neighbor-soundness** — every neighbor-table entry is vouched for by a
  beacon that was actually delivered, and (when the eviction sweep runs)
  no entry outlives the staleness bound.
* **mac-sanity** — no node is delivered a frame it sent itself, and the
  MAC's concurrent-airtime / sender-busy bookkeeping drains to zero once
  the event queue does.
* **sector-algebra** — DIKNN's sectors partition the query disk, and the
  sink's idempotent bundle merge never double-counts a sector's
  exploration statistics, however often a bundle is (re)delivered.

All checkers observe only: no RNG draws, no scheduled events, no state
mutation.  Violations raise :class:`InvariantViolation` naming the node,
time and invariant.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..core.diknn import DIKNNProtocol
from ..geometry import TWO_PI, Vec2
from ..geometry.shapes import Circle, Sector
from .base import Checker, InvariantViolation, ValidationContext

_REL_TOL = 1e-9
_ABS_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(1.0, abs(a), abs(b)) + _ABS_TOL


# ---------------------------------------------------------------------------
# event causality
# ---------------------------------------------------------------------------

class CausalityChecker(Checker):
    """Monotone clock; events execute exactly at their scheduled time."""

    name = "event-causality"

    def __init__(self) -> None:
        super().__init__()
        self._sim = None
        self._last_time = -math.inf

    def attach(self, ctx: ValidationContext) -> None:
        self._sim = ctx.sim
        self._last_time = ctx.sim.now
        ctx.sim.add_event_observer(self.on_event)

    def detach(self, ctx: ValidationContext) -> None:
        ctx.sim.remove_event_observer(self.on_event)

    def on_event(self, event_time: float) -> None:
        self.checks_run += 1
        if not math.isfinite(event_time):
            self.fail(f"event executed at non-finite time {event_time!r}",
                      time=self._last_time)
        if event_time < self._last_time:
            self.fail(
                f"event executed at {event_time:.9f} after the clock "
                f"already reached {self._last_time:.9f} (causality broken)",
                time=event_time)
        if self._sim is not None and self._sim.now != event_time:
            self.fail(
                f"clock reads {self._sim.now:.9f} while executing an event "
                f"scheduled for {event_time:.9f}", time=event_time)
        self._last_time = event_time

    def checkpoint(self, ctx: ValidationContext) -> None:
        self.checks_run += 1
        if ctx.sim.now < self._last_time:
            self.fail(
                f"clock moved backwards: now {ctx.sim.now:.9f} < last "
                f"executed event {self._last_time:.9f}", time=ctx.sim.now)


# ---------------------------------------------------------------------------
# energy conservation
# ---------------------------------------------------------------------------

class EnergyChecker(Checker):
    """Ledger accounts equal the sum of charges actually made."""

    name = "energy-conservation"

    _KINDS = ("tx", "rx", "idle")

    def __init__(self) -> None:
        super().__init__()
        self._sim = None
        self._ledgers: List[Tuple[str, object]] = []
        # ledger tag -> node -> {"tx": j, "rx": j, "idle": j}
        self._shadow: Dict[str, Dict[int, Dict[str, float]]] = {}
        self._baseline: Dict[str, Dict[int, Tuple[float, float, float]]] = {}
        self._chained: Dict[str, object] = {}

    def attach(self, ctx: ValidationContext) -> None:
        self._sim = ctx.sim
        self._ledgers = [("protocol", ctx.network.ledger),
                         ("beacon", ctx.network.beacon_ledger)]
        for tag, ledger in self._ledgers:
            # Materialize any deferred (banked) charges first: the
            # baseline must include everything already charged, or the
            # late materialization would read as an unobserved charge.
            ledger.sync()
            self._shadow[tag] = {}
            self._baseline[tag] = {
                nid: (acct.tx_j, acct.rx_j, acct.idle_j)
                for nid, acct in ledger._accounts.items()}
            self._chained[tag] = ledger.observer
            ledger.observer = self._make_observer(tag)

    def detach(self, ctx: ValidationContext) -> None:
        for tag, ledger in self._ledgers:
            ledger.observer = self._chained.get(tag)

    def _make_observer(self, tag: str):
        shadow = self._shadow[tag]
        chained = self._chained[tag]

        def _observe(node_id: int, kind: str, cost: float) -> None:
            self.checks_run += 1
            if not math.isfinite(cost) or cost < 0.0:
                now = self._sim.now if self._sim is not None else None
                self.fail(f"{tag} ledger charged a {kind} cost of {cost!r}",
                          node=node_id, time=now)
            acct = shadow.get(node_id)
            if acct is None:
                acct = {"tx": 0.0, "rx": 0.0, "idle": 0.0}
                shadow[node_id] = acct
            acct[kind] += cost
            if chained is not None:
                chained(node_id, kind, cost)

        return _observe

    def checkpoint(self, ctx: ValidationContext) -> None:
        now = ctx.sim.now
        for tag, ledger in self._ledgers:
            ledger.sync()
            shadow = self._shadow[tag]
            baseline = self._baseline[tag]
            for node_id, acct in ledger._accounts.items():
                self.checks_run += 1
                base = baseline.get(node_id, (0.0, 0.0, 0.0))
                seen = shadow.get(node_id,
                                  {"tx": 0.0, "rx": 0.0, "idle": 0.0})
                for idx, kind in enumerate(self._KINDS):
                    booked = getattr(acct, f"{kind}_j")
                    expected = base[idx] + seen[kind]
                    if not _close(booked, expected):
                        self.fail(
                            f"{tag} ledger out of balance: {kind} account "
                            f"reads {booked:.12g} J but charges sum to "
                            f"{expected:.12g} J", node=node_id, time=now)
                if not _close(acct.total_j,
                              acct.tx_j + acct.rx_j + acct.idle_j):
                    self.fail(
                        f"{tag} ledger total {acct.total_j:.12g} J is not "
                        "the sum of its tx/rx/idle parts",
                        node=node_id, time=now)


# ---------------------------------------------------------------------------
# neighbor-table soundness
# ---------------------------------------------------------------------------

class NeighborTableChecker(Checker):
    """Neighbor entries are backed by delivered beacons and honor the
    staleness bound (when the proactive eviction sweep is running)."""

    name = "neighbor-soundness"

    def __init__(self) -> None:
        super().__init__()
        self._network = None
        # (receiver, src) -> last delivered beacon time
        self._delivered: Dict[Tuple[int, int], float] = {}
        # entries predating attach: (node, neighbor) -> heard_at
        self._baseline: Dict[Tuple[int, int], float] = {}

    def attach(self, ctx: ValidationContext) -> None:
        self._network = ctx.network
        for node in ctx.network.nodes.values():
            for nbr_id, entry in node.neighbor_table.items():
                self._baseline[(node.id, nbr_id)] = entry.heard_at
        ctx.network.add_beacon_hook(self.on_beacon)

    def detach(self, ctx: ValidationContext) -> None:
        hooks = ctx.network._beacon_hooks
        if self.on_beacon in hooks:
            hooks.remove(self.on_beacon)

    def on_beacon(self, receiver_id: int, src_id: int, time: float) -> None:
        self._delivered[(receiver_id, src_id)] = time

    def checkpoint(self, ctx: ValidationContext) -> None:
        now = ctx.sim.now
        network = ctx.network
        sweep = network._sweep_task
        stale_bound = None
        if sweep is not None:
            stale_bound = network.neighbor_timeout + 2.0 * sweep._period
        for node in network.nodes.values():
            if not node.alive:
                continue  # a dead node's table is frozen, not maintained
            for nbr_id, entry in node.neighbor_table.items():
                self.checks_run += 1
                if entry.heard_at > now + _ABS_TOL:
                    self.fail(
                        f"neighbor {nbr_id} was 'heard' at "
                        f"{entry.heard_at:.6f}, in the future",
                        node=node.id, time=now)
                pre = self._baseline.get((node.id, nbr_id))
                if pre is not None and pre == entry.heard_at:
                    pass  # predates observation; soundness unverifiable
                else:
                    last = self._delivered.get((node.id, nbr_id))
                    if last is None:
                        self.fail(
                            f"neighbor entry for {nbr_id} has no delivered "
                            "beacon backing it", node=node.id, time=now)
                    elif entry.heard_at > last + _ABS_TOL:
                        self.fail(
                            f"neighbor entry for {nbr_id} claims a beacon "
                            f"at {entry.heard_at:.6f} but the last one "
                            f"delivered was at {last:.6f}",
                            node=node.id, time=now)
                if stale_bound is not None \
                        and now - entry.heard_at > stale_bound:
                    self.fail(
                        f"neighbor entry for {nbr_id} is "
                        f"{now - entry.heard_at:.3f}s old, past the "
                        f"eviction bound {stale_bound:.3f}s",
                        node=node.id, time=now)


# ---------------------------------------------------------------------------
# MAC sanity
# ---------------------------------------------------------------------------

class MacSanityChecker(Checker):
    """No self-delivery; airtime/busy bookkeeping is consistent and
    drains to zero with the event queue."""

    name = "mac-sanity"

    def __init__(self) -> None:
        super().__init__()
        self._network = None

    def attach(self, ctx: ValidationContext) -> None:
        self._network = ctx.network
        ctx.network.add_trace_hook(self.on_trace)

    def detach(self, ctx: ValidationContext) -> None:
        hooks = ctx.network._trace_hooks
        if self.on_trace in hooks:
            hooks.remove(self.on_trace)

    def on_trace(self, event: str, message, node_id: int) -> None:
        self.checks_run += 1
        now = self._network.sim.now if self._network is not None else None
        if event == "deliver" and node_id == message.src:
            self.fail(
                f"node received its own {message.kind!r} frame "
                "(self-delivery)", node=node_id, time=now)
        if event == "send" and node_id != message.src:
            self.fail(
                f"{message.kind!r} frame traced as sent by {node_id} but "
                f"stamped src={message.src}", node=node_id, time=now)

    def _macs(self, ctx: ValidationContext):
        return (("protocol", ctx.network.mac),
                ("beacon", ctx.network._beacon_mac))

    def checkpoint(self, ctx: ValidationContext) -> None:
        now = ctx.sim.now
        for tag, mac in self._macs(ctx):
            for tx in mac._active:
                self.checks_run += 1
                if tx.end < tx.start:
                    self.fail(
                        f"{tag} MAC holds a transmission ending "
                        f"({tx.end:.9f}) before it starts ({tx.start:.9f})",
                        node=tx.sender, time=now)
                if tx.start > now + _ABS_TOL:
                    self.fail(
                        f"{tag} MAC holds a transmission starting in the "
                        f"future ({tx.start:.9f})", node=tx.sender, time=now)

    def finalize(self, ctx: ValidationContext) -> None:
        # Only meaningful once nothing is left to run: an in-flight frame
        # is legitimate while events are pending.
        if ctx.sim.pending_events > 0:
            return
        now = ctx.sim.now
        for tag, mac in self._macs(ctx):
            self.checks_run += 1
            leftovers = mac.in_flight(now)
            if leftovers:
                tx = leftovers[0]
                self.fail(
                    f"{tag} MAC airtime bookkeeping did not drain: "
                    f"{len(leftovers)} transmission(s) still active, e.g. "
                    f"sender {tx.sender} until {tx.end:.9f}",
                    node=tx.sender, time=now)
            busy = mac.busy_senders(now)
            if busy:
                self.fail(
                    f"{tag} MAC sender queues did not drain: nodes {busy} "
                    "still marked busy with no events pending",
                    node=busy[0], time=now)


# ---------------------------------------------------------------------------
# DIKNN sector algebra
# ---------------------------------------------------------------------------

def check_sector_partition(point: Vec2, sectors: int,
                           radius: float = 1.0) -> int:
    """Verify the S cone-shaped sectors partition the query disk.

    Samples a deterministic fan of directions around ``point`` and checks
    that every sample lands in exactly the sector its angle predicts, that
    all ``sectors`` indices are reachable, and that the Sector shapes
    agree with :func:`repro.core.diknn.sector_of`.  Returns the number of
    samples checked; raises :class:`InvariantViolation` on any mismatch.
    """
    from ..core.diknn import sector_of  # local: avoid import cycle at load

    if sectors < 1:
        raise InvariantViolation(
            "sector-algebra", f"sector count must be >= 1, got {sectors}")
    width = TWO_PI / sectors
    circle = Circle(point, radius)
    # A lone sector is the whole disk; Sector's half-open arc cannot
    # express a full circle, so model it by the circle itself.
    shapes = ([circle] if sectors == 1
              else [Sector(circle, j * width, (j + 1) * width)
                    for j in range(sectors)])
    n = max(8 * sectors, 64)
    hit: Set[int] = set()
    for i in range(n):
        angle = (i + 0.5) * TWO_PI / n   # mid-bin: off the borders
        expected = min(int(angle / width), sectors - 1)
        p = Vec2(point.x + 0.9 * radius * math.cos(angle),
                 point.y + 0.9 * radius * math.sin(angle))
        got = sector_of(p, point, sectors)
        if got != expected:
            raise InvariantViolation(
                "sector-algebra",
                f"direction {angle:.6f} rad maps to sector {got}, "
                f"expected {expected} (sectors do not partition the disk)")
        containing = [j for j, s in enumerate(shapes) if s.contains(p)]
        if containing != [expected]:
            raise InvariantViolation(
                "sector-algebra",
                f"sample at angle {angle:.6f} rad lies in sector shapes "
                f"{containing}, expected exactly [{expected}]")
        hit.add(got)
    if len(hit) != sectors:
        raise InvariantViolation(
            "sector-algebra",
            f"only {len(hit)} of {sectors} sectors are reachable")
    if sector_of(point, point, sectors) != 0:
        raise InvariantViolation(
            "sector-algebra", "query point itself must map to sector 0")
    return n


class _QueryTrack:
    __slots__ = ("seen", "explored", "voids")

    def __init__(self) -> None:
        self.seen: Set[int] = set()
        self.explored = 0.0
        self.voids = 0.0


class SectorChecker(Checker):
    """DIKNN sector partition + idempotent bundle-merge accounting.

    Keeps an independent per-query record of which sectors have reported
    and what they contributed, and cross-checks the protocol's own
    accounting after every delivered result bundle — a regression in the
    duplicate-bundle suppression shows up as a divergence here.
    """

    name = "sector-algebra"

    def __init__(self) -> None:
        super().__init__()
        self._protocol: Optional[DIKNNProtocol] = None
        self._ctx: Optional[ValidationContext] = None
        self._track: Dict[int, _QueryTrack] = {}
        self._orig_issue = None
        self._orig_on_result = None

    def attach(self, ctx: ValidationContext) -> None:
        if not isinstance(ctx.protocol, DIKNNProtocol):
            return  # nothing to check for other protocols
        self._protocol = ctx.protocol
        self._ctx = ctx
        self._orig_issue = ctx.protocol.issue
        ctx.protocol.issue = self._issue
        # _on_result is dispatched through the router's registry, so the
        # observing wrapper must be re-registered there.
        self._orig_on_result = ctx.protocol._on_result
        if ctx.protocol.router is not None:
            ctx.protocol.router.on_deliver(DIKNNProtocol.KIND_RESULT,
                                           self._on_result)

    def detach(self, ctx: ValidationContext) -> None:
        if self._protocol is None:
            return
        self._protocol.issue = self._orig_issue
        if self._protocol.router is not None and \
                self._orig_on_result is not None:
            self._protocol.router.on_deliver(DIKNNProtocol.KIND_RESULT,
                                             self._orig_on_result)

    # -- wrappers (observe, then delegate / delegate, then verify) --------

    def _issue(self, sink, query, on_complete):
        self.checks_run += check_sector_partition(
            query.point, self._protocol.config.sectors)
        self._track.setdefault(query.query_id, _QueryTrack())
        return self._orig_issue(sink, query, on_complete)

    def _on_result(self, node, inner: dict) -> None:
        protocol = self._protocol
        query_id = inner["query_id"]
        live_before = (not protocol._is_finalized(query_id)
                       and protocol._result_of(query_id) is not None)
        self._orig_on_result(node, inner)
        if not live_before:
            return  # late bundle: the protocol must (and did) ignore it
        now = self._ctx.sim.now
        self.checks_run += 1

        cand_ids = [int(c[0]) for c in inner["cands"]]
        if len(set(cand_ids)) != len(cand_ids):
            self.fail(
                "result bundle carries duplicate candidate node ids "
                f"{sorted(cand_ids)} (merge is not idempotent)",
                node=node.id, time=now, query_id=query_id)

        track = self._track.setdefault(query_id, _QueryTrack())
        new_sectors = [s for s in inner["sectors"] if s not in track.seen]
        if new_sectors:
            track.explored += inner["explored"]
            track.voids += inner["voids"]
            track.seen.update(new_sectors)

        result = protocol._result_of(query_id)
        if result is None:
            return  # this bundle completed the query; state was consumed
        for s in inner["sectors"]:
            if not 0 <= s < result.sectors_total:
                self.fail(
                    f"bundle reports sector {s}, outside "
                    f"[0, {result.sectors_total})",
                    node=node.id, time=now, query_id=query_id)
        proto_seen = protocol.sectors_seen(query_id)
        if proto_seen != track.seen:
            self.fail(
                f"sink sector accounting diverged: protocol says "
                f"{sorted(proto_seen)}, bundles delivered say "
                f"{sorted(track.seen)}",
                node=node.id, time=now, query_id=query_id)
        if result.sectors_reported != len(track.seen):
            self.fail(
                f"sectors_reported={result.sectors_reported} but "
                f"{len(track.seen)} distinct sector(s) have reported "
                "(duplicate bundle double-counted)",
                node=node.id, time=now, query_id=query_id)
        if len(track.seen) > result.sectors_total:
            self.fail(
                f"{len(track.seen)} sectors reported out of "
                f"{result.sectors_total}", node=node.id, time=now,
                query_id=query_id)
        explored = result.meta.get("explored", 0.0)
        if not _close(explored, track.explored):
            self.fail(
                f"exploration counter reads {explored:.6g} but distinct "
                f"bundles contributed {track.explored:.6g} "
                "(duplicate bundle double-counted)",
                node=node.id, time=now, query_id=query_id)


DEFAULT_CHECKERS = (CausalityChecker, EnergyChecker, NeighborTableChecker,
                    MacSanityChecker, SectorChecker)
