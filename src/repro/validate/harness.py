"""The validation harness: wires checkers to a running simulation.

The harness is opt-in and zero-cost when off: nothing here is imported or
called unless validation was enabled (``--validate`` on the CLI, or
:func:`enable_validation` in code), and the substrate's hook points are
all guarded no-ops when no observer is installed.

Checkpoint cadence piggybacks on the simulator's event observer — every
``checkpoint_every`` executed events the harness runs each checker's
consistency sweep.  Checkpoints never schedule events or draw randomness,
so a validated run stays bit-identical to an unvalidated one.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Type

from ..metrics.accuracy import post_accuracy, pre_accuracy
from .base import Checker, InvariantViolation, ValidationContext
from .checkers import DEFAULT_CHECKERS

_ACC_TOL = 1e-9


class ValidationHarness:
    """Attach a set of invariant checkers to one simulation."""

    def __init__(self,
                 checkers: Optional[Sequence[Type[Checker]]] = None,
                 checkpoint_every: int = 256):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.checkers: List[Checker] = [
            cls() for cls in (DEFAULT_CHECKERS if checkers is None
                              else checkers)]
        self.checkpoint_every = checkpoint_every
        self.checkpoints_run = 0
        self.outcomes_checked = 0
        self._ctx: Optional[ValidationContext] = None
        self._events_seen = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._ctx is not None

    def attach(self, sim, network, protocol=None, router=None) -> None:
        if self._ctx is not None:
            raise RuntimeError("harness is already attached")
        self._ctx = ValidationContext(sim=sim, network=network,
                                      protocol=protocol, router=router)
        for checker in self.checkers:
            checker.attach(self._ctx)
        sim.add_event_observer(self._on_event)

    def attach_handle(self, handle) -> None:
        """Attach to a :class:`~repro.experiments.config.SimulationHandle`."""
        self.attach(handle.sim, handle.network,
                    protocol=handle.protocol, router=handle.router)

    def detach(self) -> None:
        if self._ctx is None:
            return
        self._ctx.sim.remove_event_observer(self._on_event)
        for checker in self.checkers:
            checker.detach(self._ctx)
        self._ctx = None

    # -- checking ---------------------------------------------------------

    def _on_event(self, event_time: float) -> None:
        self._events_seen += 1
        if self._events_seen % self.checkpoint_every == 0:
            self.check_now()

    def check_now(self) -> None:
        """Run every checker's consistency sweep against current state."""
        if self._ctx is None:
            raise RuntimeError("harness is not attached")
        self.checkpoints_run += 1
        for checker in self.checkers:
            checker.checkpoint(self._ctx)

    def finalize(self) -> None:
        """Final sweep plus end-of-run-only checks (queue-drain etc.)."""
        if self._ctx is None:
            raise RuntimeError("harness is not attached")
        self.check_now()
        for checker in self.checkers:
            checker.finalize(self._ctx)

    def observe_outcome(self, result, outcome, at=None) -> None:
        """Differentially validate one scored query outcome.

        Re-scores ``result`` against the omniscient oracle
        (:func:`repro.metrics.oracle.true_knn` via the accuracy helpers)
        and cross-checks the runner's reported accuracies.  ``at`` is the
        scoring time for partial results that never completed.
        """
        if self._ctx is None:
            raise RuntimeError("harness is not attached")
        self.outcomes_checked += 1
        now = self._ctx.sim.now
        for label, value in (("pre", outcome.pre_accuracy),
                             ("post", outcome.post_accuracy)):
            if not (-_ACC_TOL <= value <= 1.0 + _ACC_TOL):
                raise InvariantViolation(
                    "differential",
                    f"{label}-accuracy {value!r} is outside [0, 1]",
                    time=now, query_id=outcome.query_id)
        if result is None:
            if outcome.pre_accuracy or outcome.post_accuracy:
                raise InvariantViolation(
                    "differential",
                    "query produced no result yet scored nonzero accuracy",
                    time=now, query_id=outcome.query_id)
            return
        network = self._ctx.network
        oracle_pre = pre_accuracy(network, result)
        if at is None and result.completed_at is None:
            oracle_post = None
        else:
            oracle_post = post_accuracy(network, result, at=at)
        for label, reported, oracle in (
                ("pre", outcome.pre_accuracy, oracle_pre),
                ("post", outcome.post_accuracy, oracle_post)):
            if oracle is None:
                continue
            if not math.isclose(reported, oracle, rel_tol=1e-9,
                                abs_tol=1e-9):
                raise InvariantViolation(
                    "differential",
                    f"reported {label}-accuracy {reported:.9f} disagrees "
                    f"with the oracle re-score {oracle:.9f}",
                    time=now, query_id=outcome.query_id)

    # -- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        out = {checker.name: checker.checks_run
               for checker in self.checkers}
        out["checkpoints"] = self.checkpoints_run
        out["outcomes"] = self.outcomes_checked
        return out


# ---------------------------------------------------------------------------
# process-wide switch (what the CLI's --validate flips)
# ---------------------------------------------------------------------------

_ENABLED = False
_ACTIVE: List[ValidationHarness] = []


def enable_validation(enabled: bool = True) -> None:
    """Turn runtime validation on/off for subsequently built simulations."""
    global _ENABLED
    _ENABLED = enabled


def validation_enabled() -> bool:
    return _ENABLED


def maybe_attach(handle) -> Optional[ValidationHarness]:
    """Attach a harness to ``handle`` when validation is enabled.

    Called by :func:`repro.experiments.config.build_simulation`; returns
    the harness (also recorded on ``handle.validator``) or None.
    """
    if not _ENABLED:
        return None
    harness = ValidationHarness()
    harness.attach_handle(handle)
    _ACTIVE.append(harness)
    return harness


def validation_summary() -> Dict[str, int]:
    """Aggregate check counts across every harness attached this process."""
    totals: Dict[str, int] = {}
    for harness in _ACTIVE:
        for name, count in harness.summary().items():
            totals[name] = totals.get(name, 0) + count
    return totals


def reset_validation() -> None:
    """Disable validation and forget attached harnesses (tests)."""
    global _ENABLED
    _ENABLED = False
    for harness in _ACTIVE:
        harness.detach()
    _ACTIVE.clear()
