"""Runtime invariant checking, differential validation and golden traces.

The reproduction's referee layer: opt-in checkers that watch a running
simulation for substrate violations (causality, energy conservation,
neighbor soundness, MAC sanity, DIKNN sector algebra), differential
scoring of answers against the omniscient oracle and the flooding
baseline, and a golden-trace regression harness that fingerprints pinned
scenarios end to end.
"""

from .base import Checker, InvariantViolation, ValidationContext
from .checkers import (DEFAULT_CHECKERS, CausalityChecker, EnergyChecker,
                       MacSanityChecker, NeighborTableChecker, SectorChecker,
                       check_sector_partition)
from .differential import (OracleScore, compare_with_flooding, loss_sweep,
                           run_paired_query, score_result)
from .golden import (GOLDEN_SPECS, GoldenResult, GoldenSpec, run_golden,
                     run_matrix, trace_digest, verify_fixtures,
                     write_fixtures)
from .harness import (ValidationHarness, enable_validation, maybe_attach,
                      reset_validation, validation_enabled,
                      validation_summary)

__all__ = [
    "Checker", "InvariantViolation", "ValidationContext",
    "DEFAULT_CHECKERS", "CausalityChecker", "EnergyChecker",
    "MacSanityChecker", "NeighborTableChecker", "SectorChecker",
    "check_sector_partition",
    "OracleScore", "compare_with_flooding", "loss_sweep",
    "run_paired_query", "score_result",
    "GOLDEN_SPECS", "GoldenResult", "GoldenSpec", "run_golden",
    "run_matrix", "trace_digest", "verify_fixtures", "write_fixtures",
    "ValidationHarness", "enable_validation", "maybe_attach",
    "reset_validation", "validation_enabled", "validation_summary",
]
