"""Foundations of the runtime validation layer.

``repro.validate`` is the reproduction's referee: a set of pluggable
invariant checkers that observe the simulator, network and protocol while
a scenario runs, and fail loudly — naming the node, the simulated time and
the violated invariant — the moment the substrate misbehaves.  Checkers
are strictly observational: they draw no randomness, schedule no events
and mutate no simulation state, so a validated run is bit-identical to an
unvalidated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.base import QueryProtocol
    from ..net.network import Network
    from ..routing.base import Router
    from ..sim.engine import Simulator


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulation was violated.

    The message always names the invariant; ``node``, ``time`` and
    ``query_id`` pin down where it broke when known.
    """

    def __init__(self, invariant: str, detail: str,
                 node: Optional[int] = None,
                 time: Optional[float] = None,
                 query_id: Optional[int] = None):
        self.invariant = invariant
        self.detail = detail
        self.node = node
        self.time = time
        self.query_id = query_id
        where = []
        if time is not None:
            where.append(f"t={time:.6f}")
        if node is not None:
            where.append(f"node={node}")
        if query_id is not None:
            where.append(f"query={query_id}")
        prefix = f"[{invariant}]" + (" " + " ".join(where) if where else "")
        super().__init__(f"{prefix}: {detail}")
        # Any installed flight recorder gets a trigger before the raise
        # unwinds, so the ring captures the events leading up to this.
        try:
            from ..obs.flight import notify_violation
            notify_violation(self)
        except Exception:  # pragma: no cover - never mask the violation
            pass


@dataclass
class ValidationContext:
    """What a checker may look at (never touch)."""

    sim: "Simulator"
    network: "Network"
    protocol: Optional["QueryProtocol"] = None
    router: Optional["Router"] = None


class Checker:
    """One invariant family.

    Lifecycle: ``attach`` installs observation hooks, ``checkpoint`` runs
    the (possibly expensive) consistency sweep, ``finalize`` adds
    end-of-run-only checks, ``detach`` removes the hooks.  Hook callbacks
    may raise :class:`InvariantViolation` immediately for cheap per-event
    invariants.
    """

    #: short name used in violation messages and summaries
    name: str = "abstract"

    def __init__(self) -> None:
        self.checks_run = 0

    def attach(self, ctx: ValidationContext) -> None:
        """Install observation hooks."""

    def checkpoint(self, ctx: ValidationContext) -> None:
        """Sweep current state for violations."""

    def finalize(self, ctx: ValidationContext) -> None:
        """End-of-run checks (after the event queue has settled)."""

    def detach(self, ctx: ValidationContext) -> None:
        """Remove hooks installed by :meth:`attach`."""

    def fail(self, detail: str, node: Optional[int] = None,
             time: Optional[float] = None,
             query_id: Optional[int] = None) -> None:
        raise InvariantViolation(self.name, detail, node=node, time=time,
                                 query_id=query_id)
