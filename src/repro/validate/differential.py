"""Differential validation against the omniscient oracle and baselines.

Two cross-checks beyond the runtime invariants:

* :func:`score_result` judges one answer against
  :func:`repro.metrics.oracle.true_knn` and itemizes the disagreement
  (which true neighbors were missed, which returned ids were spurious).
* :func:`compare_with_flooding` replays the *same seeded scenario* under
  the protocol under test and under the flooding baseline, so a protocol
  bug that silently degrades answers shows up as a gap against a
  brute-force reference that is correct by construction on a reliable
  channel.

Experiments-layer imports are deferred so ``repro.validate`` stays
importable from anywhere without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Vec2


@dataclass(frozen=True)
class OracleScore:
    """One answer judged against ground truth at a valid time."""

    query_id: int
    k: int
    at: float
    returned: Tuple[int, ...]
    truth: Tuple[int, ...]
    accuracy: float
    missing: Tuple[int, ...]    # true neighbors the answer lacks
    spurious: Tuple[int, ...]   # returned ids that are not true neighbors


def score_result(network, result, at: Optional[float] = None) -> OracleScore:
    """Score ``result`` against the oracle at its valid time.

    The valid time is ``result.completed_at`` (post-accuracy convention),
    or ``at`` for a partial answer that never completed.
    """
    from ..metrics.accuracy import accuracy_against
    from ..metrics.oracle import true_knn

    t = result.completed_at if result.completed_at is not None else at
    if t is None:
        raise ValueError("result has no completion time; pass `at`")
    returned = tuple(result.top_k_ids())
    truth = tuple(true_knn(network, result.query.point, result.query.k,
                           t=t))
    truth_set = set(truth)
    returned_set = set(returned)
    return OracleScore(
        query_id=result.query.query_id, k=result.query.k, at=t,
        returned=returned, truth=truth,
        accuracy=accuracy_against(returned, list(truth)),
        missing=tuple(nid for nid in truth if nid not in returned_set),
        spurious=tuple(nid for nid in returned if nid not in truth_set))


def run_paired_query(config, protocol_factory, point: Vec2, k: int,
                     timeout: float = 15.0) -> Tuple[object, OracleScore]:
    """Build a fresh simulation from ``config``, run one query, score it.

    Because deployments and mobility derive from named RNG streams keyed
    only by the config seed, two calls with the same ``config`` see the
    *identical* node trajectory regardless of protocol — that is what
    makes the comparison differential rather than anecdotal.

    Returns ``(outcome, oracle_score)``; for a timed-out query the score
    covers the partial answer at give-up time (or is None if the sink
    gathered nothing at all).
    """
    from ..experiments.config import build_simulation
    from ..experiments.runner import run_query

    protocol = protocol_factory(config)
    handle = build_simulation(config, protocol)
    handle.warm_up()
    done: List[object] = []

    # run_query consumes the completed QueryResult internally (and a
    # timed-out one is finalized by abandon), so capture it for scoring by
    # wrapping issue's completion callback.
    orig_issue = handle.protocol.issue

    def _issue(sink, query, on_complete):
        def _capture(result):
            done.append(result)
            on_complete(result)
        return orig_issue(sink, query, _capture)

    handle.protocol.issue = _issue
    try:
        outcome = run_query(handle, point, k, timeout=timeout)
    finally:
        handle.protocol.issue = orig_issue
    # A timed-out query never reaches the callback; the outcome already
    # carries the partial answer's accuracies, so score is None then.
    score = score_result(handle.network, done[0]) if done else None
    return outcome, score


def compare_with_flooding(config, protocol_factory, point: Vec2, k: int,
                          timeout: float = 15.0) -> Dict[str, object]:
    """Run the same seeded scenario under the protocol and under flooding.

    Returns a dict with both outcomes, both oracle scores, and the
    post-accuracy gap (positive when flooding beat the protocol).
    """
    from ..baselines.flooding import FloodingProtocol

    outcome, score = run_paired_query(config, protocol_factory, point, k,
                                      timeout=timeout)
    base_outcome, base_score = run_paired_query(
        config, lambda cfg: FloodingProtocol(), point, k, timeout=timeout)
    return {
        "protocol": {"outcome": outcome, "oracle": score},
        "flooding": {"outcome": base_outcome, "oracle": base_score},
        "post_accuracy_gap": (base_outcome.post_accuracy
                              - outcome.post_accuracy),
    }


def loss_sweep(config, protocol_factory, point: Vec2, k: int,
               loss_rates: Sequence[float] = (0.0, 0.15, 0.3),
               timeout: float = 15.0) -> List[Tuple[float, float]]:
    """Post-accuracy of one query at increasing packet-loss rates.

    Everything but the loss rate is held fixed (same seed, deployment and
    trajectory), so the returned ``(loss, post_accuracy)`` curve isolates
    the channel's effect on answer quality.
    """
    curve: List[Tuple[float, float]] = []
    for loss in loss_rates:
        cfg = config.with_(packet_loss_rate=loss)
        outcome, _score = run_paired_query(cfg, protocol_factory, point, k,
                                           timeout=timeout)
        curve.append((loss, outcome.post_accuracy))
    return curve
