"""Golden-trace regression harness.

A *golden trace* is the canonical digest of the full TraceLog stream of a
pinned scenario: same seed, same deployment, same single query with
``query_id=1``.  The simulation is deterministic by construction (named
RNG streams, ordered event queue), so the digest is a fingerprint of the
entire protocol execution — any behavioral change, intended or not, shows
up as a digest mismatch long before it shows up in averaged metrics.

Digests hash only :class:`~repro.obs.events.TraceEntry` fields (time,
event, kind, node, src, dst, size, query id) — never module-global message
or route counters — so they are stable regardless of what ran earlier in
the process.  Fixtures live in ``tests/golden/traces.json``; regenerate
deliberately with ``python -m repro golden --regen`` after an intended
protocol change, and say why in the commit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

FIXTURE_FORMAT = 1

#: default fixture location (repo checkout layout)
DEFAULT_FIXTURE_PATH = (Path(__file__).resolve().parents[3]
                        / "tests" / "golden" / "traces.json")


@dataclass(frozen=True)
class GoldenSpec:
    """One pinned scenario in the golden matrix."""

    name: str
    protocol: str                 # "diknn" | "kpt" | "flooding"
    seed: int
    max_speed: float = 0.0
    n_nodes: int = 60
    field_size: tuple = (70.0, 70.0)
    point: tuple = (35.0, 35.0)
    k: int = 8
    timeout: float = 10.0
    crash_rate: float = 0.0
    node_downtime_s: float = 4.0

    def describe(self) -> str:
        mobility = f"rwp@{self.max_speed:g}" if self.max_speed else "static"
        faults = f" crash={self.crash_rate:g}" if self.crash_rate else ""
        return (f"{self.protocol} {mobility} seed={self.seed} "
                f"n={self.n_nodes} k={self.k}{faults}")


#: the committed scenario matrix: {static, mobile} x {diknn, kpt,
#: flooding}, plus DIKNN under fault injection in both mobility regimes.
GOLDEN_SPECS: Sequence[GoldenSpec] = (
    GoldenSpec("static-diknn", "diknn", seed=11),
    GoldenSpec("static-kpt", "kpt", seed=11),
    GoldenSpec("static-flooding", "flooding", seed=11),
    GoldenSpec("rwp-diknn", "diknn", seed=23, max_speed=10.0),
    GoldenSpec("rwp-kpt", "kpt", seed=23, max_speed=10.0),
    GoldenSpec("rwp-flooding", "flooding", seed=23, max_speed=10.0),
    GoldenSpec("static-diknn-faults", "diknn", seed=31, crash_rate=0.02),
    GoldenSpec("rwp-diknn-faults", "diknn", seed=47, max_speed=10.0,
               crash_rate=0.02),
)


@dataclass
class GoldenResult:
    """What one golden run produced (the digest plus coarse counters —
    the counters make a mismatch diagnosable without re-running)."""

    name: str
    digest: str
    entries: int
    sends: int
    delivers: int
    completed: bool
    spec: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


def trace_digest(entries) -> str:
    """Canonical sha256 of a TraceEntry stream.

    One JSON line per entry, fixed field order, no whitespace; float
    formatting is ``repr``-based and identical across supported Python
    versions, so the digest is platform- and process-independent.
    """
    h = hashlib.sha256()
    for e in entries:
        line = json.dumps(
            [e.time, e.event, e.kind, e.node, e.src, e.dst, e.size_bytes,
             e.query_id],
            separators=(",", ":"), allow_nan=False)
        h.update(line.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


def _make_protocol(name: str):
    if name == "diknn":
        from ..core import DIKNNProtocol
        return DIKNNProtocol()
    if name == "kpt":
        from ..baselines import KPTProtocol
        return KPTProtocol()
    if name == "flooding":
        from ..baselines import FloodingProtocol
        return FloodingProtocol()
    raise ValueError(f"unknown golden protocol {name!r}")


def run_golden(spec: GoldenSpec) -> GoldenResult:
    """Execute one golden scenario and digest its trace.

    The query is built directly with ``query_id=1`` (never via the global
    query-id counter) and the run always covers the full timeout window —
    no early exit on completion — so the digest does not depend on
    process history or on how the caller polls for the answer.
    """
    from ..core.query import KNNQuery
    from ..experiments.config import SimulationConfig, build_simulation
    from ..geometry import Vec2
    from ..obs.events import TraceLog

    config = SimulationConfig(
        n_nodes=spec.n_nodes, field_size=spec.field_size,
        max_speed=spec.max_speed, seed=spec.seed,
        crash_rate=spec.crash_rate, node_downtime_s=spec.node_downtime_s)
    handle = build_simulation(config, _make_protocol(spec.protocol))
    trace = TraceLog(handle.network)
    handle.warm_up()
    query = KNNQuery(query_id=1, sink_id=handle.sink.id,
                     point=Vec2(*spec.point), k=spec.k,
                     issued_at=handle.sim.now)
    done: List[object] = []
    handle.protocol.issue(handle.sink, query, done.append)
    handle.sim.run(until=handle.sim.now + spec.timeout)
    stop = getattr(handle.protocol, "stop", None)
    if callable(stop):
        stop()
    sends = sum(1 for e in trace.entries if e.event == "send")
    delivers = sum(1 for e in trace.entries if e.event == "deliver")
    return GoldenResult(name=spec.name, digest=trace_digest(trace.entries),
                        entries=len(trace.entries), sends=sends,
                        delivers=delivers, completed=bool(done),
                        spec=spec.describe())


def _select(only: Optional[Sequence[str]]) -> List[GoldenSpec]:
    if not only:
        return list(GOLDEN_SPECS)
    by_name = {spec.name: spec for spec in GOLDEN_SPECS}
    unknown = [name for name in only if name not in by_name]
    if unknown:
        raise ValueError(f"unknown golden scenario(s) {unknown}; "
                         f"choose from {sorted(by_name)}")
    return [by_name[name] for name in only]


def run_matrix(only: Optional[Sequence[str]] = None
               ) -> Dict[str, GoldenResult]:
    return {spec.name: run_golden(spec) for spec in _select(only)}


def write_fixtures(path: Optional[Path] = None,
                   only: Optional[Sequence[str]] = None) -> Path:
    """(Re)generate the committed fixture file; returns its path."""
    path = Path(path) if path is not None else DEFAULT_FIXTURE_PATH
    existing: Dict[str, dict] = {}
    if only and path.exists():
        existing = json.loads(path.read_text())["traces"]
    traces = dict(existing)
    for name, result in run_matrix(only).items():
        traces[name] = result.to_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": FIXTURE_FORMAT,
        "regenerate_with": "PYTHONPATH=src python -m repro golden --regen",
        "traces": {name: traces[name] for name in sorted(traces)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def verify_fixtures(path: Optional[Path] = None,
                    only: Optional[Sequence[str]] = None) -> List[str]:
    """Re-run the matrix and compare against the fixture file.

    Returns a list of human-readable problems; empty means everything
    matched.
    """
    path = Path(path) if path is not None else DEFAULT_FIXTURE_PATH
    if not path.exists():
        return [f"fixture file {path} does not exist "
                "(run `python -m repro golden --regen`)"]
    data = json.loads(path.read_text())
    if data.get("format") != FIXTURE_FORMAT:
        return [f"fixture format {data.get('format')!r} != "
                f"{FIXTURE_FORMAT} (regenerate)"]
    recorded: Dict[str, dict] = data["traces"]
    problems: List[str] = []
    for spec in _select(only):
        want = recorded.get(spec.name)
        if want is None:
            problems.append(f"{spec.name}: no recorded fixture")
            continue
        got = run_golden(spec)
        if got.digest != want["digest"]:
            problems.append(
                f"{spec.name}: digest {got.digest[:16]}… != recorded "
                f"{want['digest'][:16]}… (entries {got.entries} vs "
                f"{want['entries']}, sends {got.sends} vs {want['sends']}, "
                f"delivers {got.delivers} vs {want['delivers']}, "
                f"completed {got.completed} vs {want['completed']})")
    return problems
