"""Closed-form performance models of DIKNN.

Back-of-envelope models of the quantities the simulator measures, useful
for sanity-checking simulation output and for sizing deployments without
running anything.  All models assume a uniform node density and the
paper's default protocol parameters; see the test suite for how tightly
they track the simulator (factors of ~2, by design — these are models,
not fits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .core.itinerary import (adj_segments_length, full_coverage_width,
                             init_segment_length, peri_segments_length)
from .core.knnb import optimal_radius


@dataclass(frozen=True)
class NetworkProfile:
    """The environment constants the models need."""

    density: float              # nodes / m^2
    radio_range: float = 20.0
    channel_rate_bps: float = 250_000.0
    time_unit_s: float = 0.018  # the collection time unit m
    sectors: int = 8
    hop_progress_fraction: float = 0.7   # effective greedy advance per hop

    @property
    def width(self) -> float:
        return full_coverage_width(self.radio_range)

    @property
    def node_degree(self) -> float:
        """Expected neighbor count."""
        return self.density * math.pi * self.radio_range ** 2


def knn_boundary_radius(profile: NetworkProfile, k: int) -> float:
    """Expected KNN boundary radius (the optimal circle)."""
    return max(optimal_radius(profile.density, k), profile.radio_range)


def itinerary_length(profile: NetworkProfile, k: int) -> float:
    """Expected per-sector itinerary length at the optimal boundary.

    A sweep of the sector at band width w has length ~ area / w; the
    exact segment formulas floor the ring count, so the area model is
    the better expectation and the segment sum acts as a lower bound.
    """
    radius = knn_boundary_radius(profile, k)
    w, s = profile.width, profile.sectors
    segment_sum = (init_segment_length(w, s, radius)
                   + peri_segments_length(w, s, radius)
                   + adj_segments_length(w, s, radius))
    area_sweep = (math.pi * radius * radius / s) / w
    return max(segment_sum, area_sweep,
               init_segment_length(w, s, radius))


def qnode_stops_per_sector(profile: NetworkProfile, k: int) -> float:
    """Expected Q-node stops along one sub-itinerary."""
    hop = profile.hop_progress_fraction * profile.radio_range
    return max(1.0, itinerary_length(profile, k) / hop)


def expected_new_responders_per_stop(profile: NetworkProfile) -> float:
    """Fresh D-nodes per probe: the sliver of the radio disc not covered
    by the previous Q-node at typical hop spacing (~40% of the disc)."""
    return 0.4 * profile.node_degree


def collection_window_s(profile: NetworkProfile) -> float:
    """Expected per-stop collection window (responders + 2 slack units)."""
    return (expected_new_responders_per_stop(profile) + 2.0) \
        * profile.time_unit_s


def expected_latency_s(profile: NetworkProfile, k: int,
                       route_hops: float = 6.0) -> float:
    """Expected query latency: routing phase + the slowest sub-itinerary
    (stops x window) + the result route back.

    Per-hop transmission time is small (~1-5 ms) next to the collection
    windows, so the model is dominated by ``stops * window``.
    """
    per_hop_s = 150 * 8 / profile.channel_rate_bps + 0.003  # frame+backoff
    # The slowest sub-itinerary dominates: ~1.5x the mean stop count.
    dissemination = 1.5 * qnode_stops_per_sector(profile, k) \
        * collection_window_s(profile)
    return (route_hops * per_hop_s) + dissemination \
        + (route_hops * per_hop_s)


def expected_messages(profile: NetworkProfile, k: int,
                      route_hops: float = 6.0) -> float:
    """Expected application-frame count for one query: the routed query,
    per-stop probes + data replies + tokens per sector, and S result
    bundles routed back."""
    stops = qnode_stops_per_sector(profile, k) * profile.sectors
    replies = profile.density * math.pi \
        * knn_boundary_radius(profile, k) ** 2
    results = profile.sectors * route_hops
    return route_hops + stops * 2 + replies + results


def expected_energy_j(profile: NetworkProfile, k: int,
                      route_hops: float = 6.0,
                      mean_frame_bytes: float = 60.0,
                      e_elec: float = 50e-9,
                      eps_amp: float = 100e-12,
                      mean_receivers: float = None) -> float:
    """Expected per-query energy: frames x (tx + rx by addressed receivers
    + header-decode by overhearers)."""
    if mean_receivers is None:
        mean_receivers = profile.node_degree
    frames = expected_messages(profile, k, route_hops)
    bits = (mean_frame_bytes + 32) * 8
    tx = e_elec * bits + eps_amp * bits * profile.radio_range ** 2
    rx = e_elec * bits
    overhear = e_elec * 32 * 8 * max(0.0, mean_receivers - 1)
    return frames * (tx + rx + overhear)
