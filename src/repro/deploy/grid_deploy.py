"""Grid deployment with optional jitter.

The paper notes (§4.2) that much prior work assumed nodes "form a grid";
this generator supports testing KNNB under that idealized assumption and
under perturbations of it.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..geometry import Rect, Vec2
from .base import Deployment


class GridDeployment(Deployment):
    """Nodes on a near-square grid, optionally jittered."""

    def __init__(self, jitter_fraction: float = 0.0):
        """
        Args:
            jitter_fraction: per-axis uniform jitter as a fraction of the
                grid pitch (0 = exact lattice).
        """
        if jitter_fraction < 0.0:
            raise ValueError("jitter_fraction must be >= 0")
        self.jitter_fraction = jitter_fraction

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        if n == 0:
            return []
        cols = max(1, int(math.ceil(math.sqrt(n * field.width
                                              / max(field.height, 1e-9)))))
        rows = max(1, int(math.ceil(n / cols)))
        pitch_x = field.width / cols
        pitch_y = field.height / rows
        positions: List[Vec2] = []
        for i in range(rows):
            for j in range(cols):
                if len(positions) >= n:
                    break
                x = field.x_min + (j + 0.5) * pitch_x
                y = field.y_min + (i + 0.5) * pitch_y
                if self.jitter_fraction > 0.0:
                    x += float(rng.uniform(-1, 1)) * self.jitter_fraction * pitch_x
                    y += float(rng.uniform(-1, 1)) * self.jitter_fraction * pitch_y
                positions.append(field.clamp(Vec2(x, y)))
        return positions
