"""Node deployment generators: uniform, clustered, caribou-herd, grid."""

from .base import Deployment
from .caribou import CaribouDeployment
from .clustered import ClusteredDeployment
from .grid_deploy import GridDeployment
from .uniform import UniformDeployment

__all__ = ["Deployment", "CaribouDeployment", "ClusteredDeployment",
           "GridDeployment", "UniformDeployment"]
