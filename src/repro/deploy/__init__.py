"""Node deployment generators: uniform, clustered, caribou-herd, grid,
and the large-field (jittered-grid / Halton) scale generators."""

from .base import Deployment
from .caribou import CaribouDeployment
from .clustered import ClusteredDeployment
from .grid_deploy import GridDeployment
from .largefield import HaltonDeployment, JitteredGridDeployment
from .uniform import UniformDeployment

__all__ = ["Deployment", "CaribouDeployment", "ClusteredDeployment",
           "GridDeployment", "HaltonDeployment", "JitteredGridDeployment",
           "UniformDeployment"]
