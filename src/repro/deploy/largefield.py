"""Deployment generators for large-field scale runs.

The paper's experiments stop at hundreds of nodes; the ``scale-*`` bench
family pushes the simulator to 10k-50k nodes on fields sized to keep the
paper's density (node degree ~20).  Uniform i.i.d. placement stays valid
at that scale but produces occupancy fluctuations that make run-to-run
peak-memory comparisons noisy, so the scale scenarios use generators
with controlled discrepancy:

* :class:`JitteredGridDeployment` — one node per cell of the nearest
  ``ceil(sqrt(n))`` grid, uniformly jittered inside its cell.  Bounded
  local density (at most ~4 nodes within any cell-sized window), so the
  neighbor-count distribution is tight around the target degree.

* :class:`HaltonDeployment` — the base-(2, 3) Halton low-discrepancy
  sequence scaled to the field.  Deterministic given ``n`` (the RNG only
  draws a cheap digit-scramble permutation), which makes cross-run
  memory baselines exactly reproducible.

Both are vectorized: cost is O(n) numpy work regardless of field size.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..geometry import Rect, Vec2
from .base import Deployment


def _to_vecs(xs: np.ndarray, ys: np.ndarray) -> List[Vec2]:
    return [Vec2(x, y) for x, y in zip(xs.tolist(), ys.tolist())]


class JitteredGridDeployment(Deployment):
    """One node per grid cell, uniformly jittered within the cell.

    Cells are the ``m x m`` grid with ``m = ceil(sqrt(n))``; the ``n``
    occupied cells are a random sample of the ``m*m`` available, so the
    field has no systematic empty corner when ``n < m*m``.
    """

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        if n == 0:
            return []
        m = math.ceil(math.sqrt(n))
        chosen = rng.permutation(m * m)[:n]
        cx = (chosen % m).astype(np.float64)
        cy = (chosen // m).astype(np.float64)
        w = (field.x_max - field.x_min) / m
        h = (field.y_max - field.y_min) / m
        xs = field.x_min + (cx + rng.uniform(0.0, 1.0, size=n)) * w
        ys = field.y_min + (cy + rng.uniform(0.0, 1.0, size=n)) * h
        return _to_vecs(xs, ys)


class HaltonDeployment(Deployment):
    """Base-(2, 3) Halton sequence over the field.

    The radical-inverse digits of each coordinate are scrambled with one
    RNG-drawn permutation per base, so different seeds decorrelate the
    axes without losing the low-discrepancy structure.
    """

    _BASES = (2, 3)

    @staticmethod
    def _radical_inverse(idx: np.ndarray, base: int,
                         perm: np.ndarray) -> np.ndarray:
        out = np.zeros(idx.shape[0])
        denom = 1.0
        work = idx.copy()
        while work.any():
            denom *= base
            out += perm[work % base] / denom
            work //= base
        return out

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        if n == 0:
            return []
        idx = np.arange(1, n + 1, dtype=np.int64)
        coords = []
        for base in self._BASES:
            # Scramble non-zero digits only (zero must stay fixed, or
            # leading zeros would shift every point).
            perm = np.concatenate(
                ([0], 1 + rng.permutation(base - 1))).astype(np.float64)
            coords.append(self._radical_inverse(idx, base, perm))
        xs = field.x_min + coords[0] * (field.x_max - field.x_min)
        ys = field.y_min + coords[1] * (field.y_max - field.y_min)
        return _to_vecs(xs, ys)
