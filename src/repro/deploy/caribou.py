"""Synthetic caribou-herd deployment (substitute for the Gros Morne trace).

The paper's Figure 7 runs DIKNN over a real caribou population distribution
from Gros Morne National Park [27]; that map is no longer obtainable.  What
Figure 7 needs from the data is a *large, strongly irregular field with
dense herds, sparse stragglers, and hard voids* — conditions that provoke
itinerary voids and isolated sector pockets.  This generator synthesizes a
field with those properties:

* herds: anisotropic Gaussian clusters strung along a meandering valley
  corridor (animals aggregate along terrain features);
* stragglers: a thin uniform background;
* voids: elliptical exclusion zones ("lakes/barrens") that reject samples.

See DESIGN.md §4 (substitution 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..geometry import Rect, Vec2
from .base import Deployment


@dataclass(frozen=True)
class _Void:
    center: Vec2
    rx: float
    ry: float

    def contains(self, p: Vec2) -> bool:
        dx = (p.x - self.center.x) / self.rx
        dy = (p.y - self.center.y) / self.ry
        return dx * dx + dy * dy <= 1.0


class CaribouDeployment(Deployment):
    """Herd-structured irregular deployment with exclusion voids."""

    def __init__(self, n_herds: int = 6, straggler_fraction: float = 0.12,
                 n_voids: int = 3, herd_spread_fraction: float = 0.06,
                 corridor_amplitude: float = 0.25):
        if not 0.0 <= straggler_fraction <= 1.0:
            raise ValueError("straggler_fraction must lie in [0, 1]")
        if n_herds < 1:
            raise ValueError("need at least one herd")
        self.n_herds = n_herds
        self.straggler_fraction = straggler_fraction
        self.n_voids = n_voids
        self.herd_spread_fraction = herd_spread_fraction
        self.corridor_amplitude = corridor_amplitude

    def _make_voids(self, field: Rect,
                    rng: np.random.Generator) -> List[_Void]:
        voids = []
        for _ in range(self.n_voids):
            center = Vec2(float(rng.uniform(field.x_min, field.x_max)),
                          float(rng.uniform(field.y_min, field.y_max)))
            rx = float(rng.uniform(0.06, 0.14)) * field.width
            ry = float(rng.uniform(0.06, 0.14)) * field.height
            voids.append(_Void(center, rx, ry))
        return voids

    def _herd_centers(self, field: Rect,
                      rng: np.random.Generator) -> List[Vec2]:
        """Herds strung along a sinusoidal valley corridor."""
        centers = []
        phase = float(rng.uniform(0.0, 2.0 * math.pi))
        for i in range(self.n_herds):
            frac = (i + 0.5) / self.n_herds
            x = field.x_min + frac * field.width
            mid_y = field.y_min + field.height / 2.0
            y = mid_y + (self.corridor_amplitude * field.height
                         * math.sin(2.0 * math.pi * frac + phase))
            jitter = 0.05 * min(field.width, field.height)
            centers.append(field.clamp(Vec2(
                x + float(rng.normal(0.0, jitter)),
                y + float(rng.normal(0.0, jitter)))))
        return centers

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        voids = self._make_voids(field, rng)
        centers = self._herd_centers(field, rng)
        spread = self.herd_spread_fraction * min(field.width, field.height)
        n_stragglers = int(round(n * self.straggler_fraction))
        n_herded = n - n_stragglers
        # Herd sizes follow a Dirichlet draw: real herds are unequal.
        weights = rng.dirichlet([2.0] * len(centers))
        positions: List[Vec2] = []

        def _sample_ok(p: Vec2) -> bool:
            return field.contains(p) and not any(v.contains(p) for v in voids)

        for center, w in zip(centers, weights):
            target = int(round(n_herded * float(w)))
            # Anisotropic: herds stretch along the corridor (x axis).
            sx, sy = spread * 1.8, spread * 0.8
            made = 0
            attempts = 0
            while made < target and attempts < target * 50 + 100:
                attempts += 1
                p = field.clamp(Vec2(float(rng.normal(center.x, sx)),
                                     float(rng.normal(center.y, sy))))
                if _sample_ok(p):
                    positions.append(p)
                    made += 1
        while len(positions) < n - n_stragglers:
            # Top up if rounding/void rejection left us short.
            p = Vec2(float(rng.uniform(field.x_min, field.x_max)),
                     float(rng.uniform(field.y_min, field.y_max)))
            if _sample_ok(p):
                positions.append(p)
        attempts = 0
        while len(positions) < n and attempts < n * 100 + 1000:
            attempts += 1
            p = Vec2(float(rng.uniform(field.x_min, field.x_max)),
                     float(rng.uniform(field.y_min, field.y_max)))
            if _sample_ok(p):
                positions.append(p)
        # Pathological void coverage: fall back to unconstrained placement
        # rather than returning fewer nodes than asked for.
        while len(positions) < n:
            positions.append(Vec2(float(rng.uniform(field.x_min, field.x_max)),
                                  float(rng.uniform(field.y_min, field.y_max))))
        return positions[:n]
