"""Deployment generator interface and helpers.

A deployment places ``n`` node positions inside a rectangular field.  The
paper uses uniform random placement for the main experiments (§5.1) and a
real-world caribou distribution for the Figure 7 demonstration; clustered
and grid deployments support the spatial-irregularity ablations.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from ..geometry import Rect, Vec2


class Deployment(abc.ABC):
    """Strategy producing initial node positions."""

    @abc.abstractmethod
    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        """``n`` positions inside ``field``."""

    @staticmethod
    def _validate(n: int) -> None:
        if n < 0:
            raise ValueError("cannot deploy a negative number of nodes")
