"""Clustered (spatially irregular) deployment.

Implements the spatial irregularity scenario of Ganesan et al. [8] that the
paper cites in §4.3: node density varies strongly across the field.  A
Gaussian-mixture placement with a uniform background produces exactly the
unpredictable-density regime the rendezvous mechanism targets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Rect, Vec2
from .base import Deployment


class ClusteredDeployment(Deployment):
    """Gaussian-mixture clusters over a uniform background."""

    def __init__(self, n_clusters: int = 4, cluster_fraction: float = 0.8,
                 spread_fraction: float = 0.08,
                 centers: Optional[Sequence[Tuple[float, float]]] = None):
        """
        Args:
            n_clusters: number of Gaussian blobs (ignored if ``centers``).
            cluster_fraction: fraction of nodes placed in blobs; the rest
                are uniform background stragglers.
            spread_fraction: blob standard deviation as a fraction of the
                smaller field dimension.
            centers: explicit blob centers; random if omitted.
        """
        if not 0.0 <= cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must lie in [0, 1]")
        if n_clusters < 1 and centers is None:
            raise ValueError("need at least one cluster")
        self.n_clusters = n_clusters
        self.cluster_fraction = cluster_fraction
        self.spread_fraction = spread_fraction
        self.centers = centers

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        if self.centers is not None:
            centers = [Vec2(cx, cy) for cx, cy in self.centers]
        else:
            centers = [Vec2(float(rng.uniform(field.x_min, field.x_max)),
                            float(rng.uniform(field.y_min, field.y_max)))
                       for _ in range(self.n_clusters)]
        spread = self.spread_fraction * min(field.width, field.height)
        n_clustered = int(round(n * self.cluster_fraction))
        positions: List[Vec2] = []
        if centers and n_clustered:
            assignments = rng.integers(0, len(centers), size=n_clustered)
            for ci in assignments:
                center = centers[int(ci)]
                p = Vec2(float(rng.normal(center.x, spread)),
                         float(rng.normal(center.y, spread)))
                positions.append(field.clamp(p))
        for _ in range(n - len(positions)):
            positions.append(Vec2(float(rng.uniform(field.x_min, field.x_max)),
                                  float(rng.uniform(field.y_min, field.y_max))))
        return positions
