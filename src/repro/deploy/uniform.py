"""Uniform random deployment — the paper's default (§5.1)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry import Rect, Vec2
from .base import Deployment


class UniformDeployment(Deployment):
    """Nodes i.i.d. uniform over the field."""

    def generate(self, n: int, field: Rect,
                 rng: np.random.Generator) -> List[Vec2]:
        self._validate(n)
        xs = rng.uniform(field.x_min, field.x_max, size=n)
        ys = rng.uniform(field.y_min, field.y_max, size=n)
        return [Vec2(float(x), float(y)) for x, y in zip(xs, ys)]
