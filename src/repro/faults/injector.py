"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live simulation.

The injector owns the seam between declared faults and simulator state:
it schedules every event on the kernel, flips ``node.alive`` for crashes
and blackouts, installs the time-windowed loss overlay on both MAC
instances (protocol and beacon traffic degrade together), and mutes
beacons through the network's suppression set.  Protocols never see the
injector — they only observe its consequences, exactly as a deployed
protocol would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net.network import Network
from ..sim.engine import Simulator
from .plan import (BeaconSuppression, FaultPlan, LinkDegradation, NodeCrash,
                   NodeRecovery, RegionalBlackout)

#: the dedicated RNG stream randomized fault schedules draw from
FAULT_STREAM = "faults"


@dataclass
class FaultStats:
    """What the injector actually did (for diagnostics and tests)."""

    crashes: int = 0
    recoveries: int = 0
    blackouts: int = 0
    blackout_kills: int = 0
    degradation_windows: int = 0
    suppression_windows: int = 0
    #: node id -> number of times it was killed (crash or blackout)
    kills_by_node: Dict[int, int] = field(default_factory=dict)


class FaultInjector:
    """Installs a fault plan onto a running ``Simulator``/``Network``."""

    def __init__(self, sim: Simulator, network: Network,
                 plan: Optional[FaultPlan] = None):
        self.sim = sim
        self.network = network
        self.plan = plan or FaultPlan()
        self.stats = FaultStats()
        self._installed = False
        # Active extra-loss windows: (start, end, extra_loss).
        self._loss_windows: List[Tuple[float, float, float]] = []
        #: hooks fired as ``fn(event, node_id_or_None)`` on kill/recover
        self.on_fault: List[Callable[[str, Optional[int]], None]] = []

    # -- installation ------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Schedule every planned event; idempotent per injector."""
        if self._installed:
            return self
        self._installed = True
        for event in self.plan:
            self._schedule(event)
        if any(isinstance(e, LinkDegradation) for e in self.plan):
            self._install_loss_overlay()
        return self

    def _at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule at ``time``, clamped to now for already-past times."""
        self.sim.schedule_at(max(time, self.sim.now), callback)

    def _schedule(self, event) -> None:
        if isinstance(event, NodeCrash):
            self._at(event.at, lambda: self._crash(event.node_id))
            if event.downtime_s is not None:
                self._at(event.at + event.downtime_s,
                         lambda: self._recover(event.node_id))
        elif isinstance(event, NodeRecovery):
            self._at(event.at, lambda: self._recover(event.node_id))
        elif isinstance(event, RegionalBlackout):
            self._at(event.at, lambda: self._blackout(event))
        elif isinstance(event, LinkDegradation):
            self._loss_windows.append(
                (event.at, event.at + event.duration_s, event.extra_loss))
            self.stats.degradation_windows += 1
        elif isinstance(event, BeaconSuppression):
            self._at(event.at, lambda: self._suppress(event))
        else:  # pragma: no cover - plan types are closed
            raise TypeError(f"unknown fault event {event!r}")

    # -- crash / recover ---------------------------------------------------

    def _kill(self, node_id: int) -> bool:
        node = self.network.nodes.get(node_id)
        if node is None or not node.alive:
            return False
        node.alive = False
        self.stats.kills_by_node[node_id] = \
            self.stats.kills_by_node.get(node_id, 0) + 1
        return True

    def _crash(self, node_id: int) -> None:
        if self._kill(node_id):
            self.stats.crashes += 1
            self._notify("crash", node_id)

    def _recover(self, node_id: int) -> None:
        node = self.network.nodes.get(node_id)
        if node is None or node.alive:
            return
        # A reboot loses volatile state: the node relearns its
        # neighborhood from scratch instead of trusting entries that are
        # stale by exactly the downtime.
        node.reset_neighbors()
        node.alive = True
        self.stats.recoveries += 1
        self._notify("recover", node_id)

    def _blackout(self, event: RegionalBlackout) -> None:
        center = event.center_vec
        r_sq = event.radius * event.radius
        victims = []
        now = self.sim.now
        for node in self.network.nodes.values():
            if not node.alive:
                continue
            if node.mobility.position_at(now).distance_sq_to(center) <= r_sq:
                victims.append(node.id)
        for node_id in victims:
            self._kill(node_id)
        self.stats.blackouts += 1
        self.stats.blackout_kills += len(victims)
        self._notify("blackout", None)
        if event.recover and victims:
            self._at(event.at + event.duration_s,
                     lambda: self._lift_blackout(victims))

    def _lift_blackout(self, victims: List[int]) -> None:
        for node_id in victims:
            self._recover(node_id)

    # -- link degradation --------------------------------------------------

    def _install_loss_overlay(self) -> None:
        self.network.mac.loss_overlay = self.extra_loss_now
        self.network._beacon_mac.loss_overlay = self.extra_loss_now
        # Time-parameterized variant: the batched beacon kernel evaluates
        # loss at each fire's logical time, not the flush time.
        self.network.mac.loss_overlay_at = self.extra_loss_at
        self.network._beacon_mac.loss_overlay_at = self.extra_loss_at

    def extra_loss_now(self) -> float:
        """Extra channel loss in effect at the current simulated time.

        Overlapping windows compose as independent erasures.
        """
        return self.extra_loss_at(self.sim.now)

    def extra_loss_at(self, t: float) -> float:
        """Extra channel loss in effect at simulated time ``t``."""
        survive = 1.0
        for start, end, extra in self._loss_windows:
            if start <= t < end:
                survive *= 1.0 - extra
        return 1.0 - survive

    # -- beacon suppression ------------------------------------------------

    def _suppress(self, event: BeaconSuppression) -> None:
        ids = (event.node_ids if event.node_ids is not None
               else tuple(self.network.nodes))
        self.network.mute_beacons(ids)
        self.stats.suppression_windows += 1
        self._at(event.at + event.duration_s,
                 lambda: self.network.unmute_beacons(ids))

    # -- notification ------------------------------------------------------

    def _notify(self, kind: str, node_id: Optional[int]) -> None:
        for hook in self.on_fault:
            hook(kind, node_id)
