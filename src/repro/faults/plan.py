"""Declarative fault plans.

A plan is an ordered collection of fault events, each pinned to an
absolute simulated time.  Plans are plain data: they can be built by
hand for targeted tests (kill this sector at t=0.8), generated from a
seeded RNG stream for statistical sweeps (:func:`poisson_crashes`), or
serialized into scenario files.  Applying a plan is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..geometry import Vec2
from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node_id`` dies at ``at``; recovers after ``downtime_s``
    (``None`` = permanent)."""

    at: float
    node_id: int
    downtime_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ConfigurationError("crash time must be >= 0")
        if self.downtime_s is not None and self.downtime_s <= 0.0:
            raise ConfigurationError("downtime must be positive or None")


@dataclass(frozen=True)
class NodeRecovery:
    """Node ``node_id`` reboots at ``at`` (a no-op if it is alive).

    A rebooted node comes back with an empty neighbor table: whatever it
    knew before the crash is lost, and it relearns the neighborhood from
    beacons.
    """

    at: float
    node_id: int


@dataclass(frozen=True)
class RegionalBlackout:
    """Every node inside the disc (``center``, ``radius``) dies at ``at``.

    Nodes that were alive when the blackout struck recover together at
    ``at + duration_s`` (set ``recover=False`` for a permanent outage).
    Models correlated failures — a power event, jamming, physical damage
    — rather than independent per-node deaths.
    """

    at: float
    center: Tuple[float, float]
    radius: float
    duration_s: float
    recover: bool = True

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ConfigurationError("blackout radius must be positive")
        if self.duration_s <= 0.0:
            raise ConfigurationError("blackout duration must be positive")

    @property
    def center_vec(self) -> Vec2:
        return Vec2(*self.center)


@dataclass(frozen=True)
class LinkDegradation:
    """Extra channel loss ``extra_loss`` layered onto the radio during
    [``at``, ``at + duration_s``): bursty interference / weather fade.

    The extra loss composes with the radio's base loss rate as
    independent erasure: ``1 - (1-base)(1-extra)``.
    """

    at: float
    duration_s: float
    extra_loss: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ConfigurationError("extra loss must lie in [0, 1]")
        if self.duration_s <= 0.0:
            raise ConfigurationError("degradation duration must be positive")


@dataclass(frozen=True)
class BeaconSuppression:
    """Nodes in ``node_ids`` (``None`` = every node) stop beaconing
    during [``at``, ``at + duration_s``): neighbor tables silently rot
    while the nodes keep relaying traffic — the nastiest staleness mode,
    since liveness and reachability diverge."""

    at: float
    duration_s: float
    node_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("suppression duration must be positive")


FaultEvent = Union[NodeCrash, NodeRecovery, RegionalBlackout,
                   LinkDegradation, BeaconSuppression]


@dataclass
class FaultPlan:
    """An ordered, declarative schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def extend(self, events: Iterable[FaultEvent]) -> "FaultPlan":
        self.events.extend(events)
        return self

    # -- fluent builders ---------------------------------------------------

    def crash(self, node_id: int, at: float,
              downtime_s: Optional[float] = None) -> "FaultPlan":
        return self.add(NodeCrash(at=at, node_id=node_id,
                                  downtime_s=downtime_s))

    def recover(self, node_id: int, at: float) -> "FaultPlan":
        return self.add(NodeRecovery(at=at, node_id=node_id))

    def blackout(self, center: Tuple[float, float], radius: float,
                 at: float, duration_s: float,
                 recover: bool = True) -> "FaultPlan":
        return self.add(RegionalBlackout(at=at, center=tuple(center),
                                         radius=radius,
                                         duration_s=duration_s,
                                         recover=recover))

    def degrade_links(self, at: float, duration_s: float,
                      extra_loss: float) -> "FaultPlan":
        return self.add(LinkDegradation(at=at, duration_s=duration_s,
                                        extra_loss=extra_loss))

    def suppress_beacons(self, at: float, duration_s: float,
                         node_ids: Optional[Sequence[int]] = None
                         ) -> "FaultPlan":
        return self.add(BeaconSuppression(
            at=at, duration_s=duration_s,
            node_ids=tuple(node_ids) if node_ids is not None else None))


def poisson_crashes(rng: np.random.Generator, node_ids: Sequence[int],
                    rate: float, start: float, duration: float,
                    downtime_s: Optional[float] = None) -> List[NodeCrash]:
    """Sample independent per-node crash processes.

    Each node in ``node_ids`` crashes as a Poisson process with ``rate``
    events per second over [``start``, ``start + duration``); a node that
    recovers (``downtime_s`` set) can crash again later in the window.
    Pass the simulator's dedicated ``"faults"`` stream as ``rng`` so the
    schedule is replayable without perturbing any other stream.
    """
    if rate < 0.0:
        raise ConfigurationError("crash rate must be >= 0")
    crashes: List[NodeCrash] = []
    if rate == 0.0 or duration <= 0.0:
        return crashes
    end = start + duration
    # Iterate nodes in sorted order so the draw sequence is independent
    # of the caller's container ordering.
    for node_id in sorted(node_ids):
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                break
            crashes.append(NodeCrash(at=t, node_id=node_id,
                                     downtime_s=downtime_s))
            if downtime_s is None:
                break  # permanent: one crash per node
            t += downtime_s
    crashes.sort(key=lambda c: (c.at, c.node_id))
    return crashes
