"""Chaos fault injection: declarative plans applied to a live simulation.

The paper evaluates DIKNN only under mobility-induced staleness; this
package stress-tests the same claim — itinerary traversal degrades
gracefully because each sector reports independently — under node
crashes, correlated regional blackouts, bursty channel loss and beacon
suppression.  A :class:`FaultPlan` is a declarative schedule of fault
events; a :class:`FaultInjector` installs it onto a running
``Simulator``/``Network`` pair without any protocol code knowing.  All
randomized plan generation draws from the dedicated ``"faults"`` RNG
stream, so fault schedules are replayable and never perturb the draws of
mobility, MAC or workload streams.
"""

from .plan import (BeaconSuppression, FaultPlan, LinkDegradation, NodeCrash,
                   NodeRecovery, RegionalBlackout, poisson_crashes)
from .injector import FAULT_STREAM, FaultInjector, FaultStats

__all__ = [
    "BeaconSuppression", "FaultPlan", "LinkDegradation", "NodeCrash",
    "NodeRecovery", "RegionalBlackout", "poisson_crashes",
    "FAULT_STREAM", "FaultInjector", "FaultStats",
]
