"""Discrete-event simulation kernel: scheduler, RNG streams, errors."""

from .engine import EventHandle, PeriodicTask, Simulator
from .errors import (ConfigurationError, QueryError, ReproError,
                     RoutingError, SimulationError)
from .rng import RngRegistry

__all__ = [
    "EventHandle", "PeriodicTask", "Simulator", "ConfigurationError",
    "QueryError", "ReproError", "RoutingError", "SimulationError",
    "RngRegistry",
]
