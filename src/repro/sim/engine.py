"""Discrete-event simulation kernel.

A classic event-list kernel: callbacks scheduled at absolute simulated times,
executed in (time, sequence) order so simultaneous events run in scheduling
order.  This is the substrate everything else (MAC, beacons, protocol
timers) is built on — the reproduction's stand-in for ns-2's scheduler.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

from .errors import SimulationError
from .rng import RngRegistry

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.rng = RngRegistry(seed)
        self._queue: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_executed = 0
        self._running = False
        self._stop_requested = False
        # Pure observers called as fn(event_time) after the clock advances
        # and before the callback runs.  Observers must not schedule events
        # or draw RNG (repro.validate relies on this to stay side-effect
        # free); with none registered the execution path is unchanged.
        self._observers: List[Callable[[float], None]] = []
        # Optional wall-clock accountant (repro.obs.KernelProfiler): when
        # set, every callback is timed with perf_counter.  The profiler
        # only reads the wall clock — never the seeded RNG — so results
        # stay bit-identical with or without it.
        self.profiler = None
        # Optional flight recorder (repro.obs.FlightRecorder): when set,
        # every executed event lands in its bounded ring — one deque
        # append, labels resolved only at dump time.
        self.flight = None

    # -- observation ---------------------------------------------------------

    def add_event_observer(self, observer: Callable[[float], None]) -> None:
        """Register a read-only observer of event execution."""
        self._observers.append(observer)

    def remove_event_observer(self, observer: Callable[[float], None]) -> None:
        """Unregister an observer; a no-op if it is not registered."""
        if observer in self._observers:
            self._observers.remove(observer)

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN time")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self.now}")
        event = _ScheduledEvent(time, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0.0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    def request_stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event.

        Event-driven completion: a callback (say, a query's completion
        handler) can end the enclosing ``run`` without the caller polling
        the queue one ``step`` at a time.  A no-op outside ``run``; the
        flag is cleared on the next ``run`` entry.
        """
        self._stop_requested = True

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_executed += 1
            if self._observers:
                for observer in self._observers:
                    observer(event.time)
            if self.flight is not None:
                self.flight.record_event(event.time, event.callback)
            if self.profiler is not None:
                t0 = perf_counter()
                event.callback()
                self.profiler.record(event.callback, perf_counter() - t0)
            else:
                event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or the
        event budget ``max_events`` is exhausted.

        When stopped by ``until``, the clock is advanced to ``until`` so a
        subsequent ``run`` continues from there.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self.now = event.time
                self._events_executed += 1
                executed += 1
                if self._observers:
                    for observer in self._observers:
                        observer(event.time)
                if self.flight is not None:
                    self.flight.record_event(event.time, event.callback)
                if self.profiler is not None:
                    t0 = perf_counter()
                    event.callback()
                    self.profiler.record(event.callback,
                                         perf_counter() - t0)
                else:
                    event.callback()
                if self._stop_requested:
                    return
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    def credit_events(self, n: int) -> None:
        """Account ``n`` logical events executed outside the event queue.

        Batched subsystems (the beacon epoch kernel) collapse many
        fine-grained events into one scheduled callback; crediting keeps
        ``events_executed`` comparable between the batched and per-event
        implementations, so bench throughput and the cross-run
        determinism gate keep meaning the same thing.
        """
        if n < 0:
            raise SimulationError("cannot credit a negative event count")
        self._events_executed += n

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def peek_next_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None if the queue is empty."""
        for event in sorted(self._queue)[:]:
            if not event.cancelled:
                return event.time
        return None


class PeriodicTask:
    """Re-schedules a callback every ``period`` seconds until stopped."""

    def __init__(self, sim: Simulator, period: float,
                 callback: EventCallback, jitter: float = 0.0,
                 rng_stream: str = "periodic"):
        if period <= 0.0:
            raise SimulationError("period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._rng_stream = rng_stream
        self._handle: Optional[EventHandle] = None
        self._stopped = False

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing. Default initial delay is one (jittered) period."""
        if initial_delay is None:
            initial_delay = self._next_delay()
        self._handle = self._sim.schedule_in(initial_delay, self._fire)

    def _next_delay(self) -> float:
        if self._jitter <= 0.0:
            return self._period
        gen = self._sim.rng.stream(self._rng_stream)
        return max(1e-9,
                   self._period + gen.uniform(-self._jitter, self._jitter))

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule_in(self._next_delay(),
                                                 self._fire)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
