"""Exception hierarchy for the simulator and protocols."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised on kernel misuse (scheduling into the past, reuse after stop)."""


class ConfigurationError(ReproError):
    """Raised when a simulation or protocol is configured inconsistently."""


class RoutingError(ReproError):
    """Raised when a routing operation cannot proceed (e.g. empty network)."""


class QueryError(ReproError):
    """Raised when a KNN query is malformed (k < 1, point outside field...)."""
