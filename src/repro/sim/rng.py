"""Deterministic random-number stream management.

Every stochastic component of the simulator (mobility, MAC jitter, packet
loss, deployment, workload) draws from its own named child stream of a root
``numpy.random.SeedSequence``.  Two runs with the same root seed are
bit-identical; changing one factor (say mobility speed) perturbs only the
draws that depend on it, which keeps paired comparisons across protocols
low-variance.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """A factory of named, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use.

        The same ``(seed, name)`` pair always yields a generator with the
        same initial state, regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode("utf-8"))])
            gen = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = gen
        return gen

    def spawn(self, salt: int) -> "RngRegistry":
        """A registry derived from this one, for per-run seeding in sweeps."""
        return RngRegistry(seed=self.seed * 1_000_003 + salt)
