"""Setup shim: this environment lacks the `wheel` package needed by
`pip install -e .`'s PEP-660 path, so `python setup.py develop` is the
offline-friendly editable install. Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
