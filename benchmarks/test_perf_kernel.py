"""Substrate performance microbenchmarks (real timing, pytest-benchmark).

These measure the simulator itself, not the paper's metrics: event
throughput, spatial queries, planarization, itinerary construction and
KNNB — the pieces every simulated second is built from.  Useful for
catching performance regressions in the substrate.

Every benchmark carries a stable ``bench_id`` in ``extra_info`` so the
macro-benchmark harness can ingest pytest-benchmark output into the same
``BENCH_*.json`` artifact the suite runner emits::

    pytest benchmarks/test_perf_kernel.py --benchmark-json=micro.json
    python -m repro bench run --suite small --microbench micro.json

Renaming a test must not change its ``bench_id`` — the id is the join
key ``repro bench compare`` tracks across runs.
"""

import numpy as np

from repro.core import build_itineraries, full_coverage_width, knnb_radius
from repro.core.knnb import InfoList
from repro.deploy import UniformDeployment
from repro.geometry import Rect, SpatialGrid, Vec2, planarize
from repro.sim import Simulator

FIELD = Rect.from_size(115.0, 115.0)


def test_perf_event_throughput(benchmark):
    """Schedule and drain 20k events."""
    benchmark.extra_info["bench_id"] = "kernel.event_throughput"

    def run():
        sim = Simulator()
        counter = [0]
        for i in range(20_000):
            sim.schedule_at(float(i) * 1e-3,
                            lambda: counter.__setitem__(0, counter[0] + 1))
        sim.run()
        return counter[0]

    assert benchmark(run) == 20_000


def test_perf_spatial_grid_queries(benchmark):
    """1k range queries over a 200-point grid."""
    benchmark.extra_info["bench_id"] = "geometry.spatial_grid_queries"
    rng = np.random.default_rng(3)
    points = UniformDeployment().generate(200, FIELD, rng)
    grid = SpatialGrid(20.0)
    grid.bulk_load(list(enumerate(points)))
    centers = UniformDeployment().generate(1000, FIELD, rng)

    def run():
        total = 0
        for c in centers:
            total += sum(1 for _ in grid.within(c, 20.0))
        return total

    assert benchmark(run) > 0


def test_perf_planarization(benchmark):
    """Gabriel-planarize a 200-node unit-disk graph."""
    benchmark.extra_info["bench_id"] = "geometry.planarization"
    rng = np.random.default_rng(5)
    positions = dict(enumerate(
        UniformDeployment().generate(200, FIELD, rng)))

    def run():
        return planarize(positions, radius=20.0)

    adjacency = benchmark(run)
    assert len(adjacency) == 200


def test_perf_itinerary_construction(benchmark):
    """Build all 8 sub-itineraries for a large boundary."""
    benchmark.extra_info["bench_id"] = "core.itinerary_construction"
    w = full_coverage_width(20.0)

    def run():
        return build_itineraries(Vec2(60, 60), 55.0, 8, w, spacing=16.0)

    its = benchmark(run)
    assert len(its) == 8


def test_perf_knnb(benchmark):
    """Algorithm 1 over a 30-hop information list."""
    benchmark.extra_info["bench_id"] = "core.knnb_radius"
    info = InfoList()
    for i in range(30):
        info.append(Vec2(400.0 - i * 13.0, 50.0), 4)

    def run():
        return knnb_radius(info, Vec2(400.0, 50.0), 20.0, 40)

    assert benchmark(run) > 0


def _warm_beacon_network(mode):
    from repro.mobility import RandomWaypointMobility
    from repro.net import Network, SensorNode

    sim = Simulator(seed=9)
    net = Network(sim, beacon_mode=mode)
    rng = np.random.default_rng(9)
    for i, pos in enumerate(UniformDeployment().generate(200, FIELD, rng)):
        net.add_node(SensorNode(i, RandomWaypointMobility(
            pos, FIELD, sim.rng.stream(f"m{i}"), max_speed=10.0)))
    net.warm_up()
    return sim, net


def test_perf_batched_beacon_epoch(benchmark):
    """One beacon interval of a warm 200-node network on the batched
    kernel: a single epoch flush replaces 200 per-node fire events."""
    benchmark.extra_info["bench_id"] = "net.batched_beacon_epoch"
    sim, net = _warm_beacon_network("batched")

    def run():
        sim.run(until=sim.now + net.beacon_interval)
        return sim.events_executed

    assert benchmark(run) > 0


def test_perf_vectorized_oracle(benchmark):
    """Exact-KNN ground truth over 200 nodes via the mobility bank."""
    benchmark.extra_info["bench_id"] = "metrics.oracle_true_knn"
    from repro.metrics import true_knn

    sim, net = _warm_beacon_network("batched")
    centers = UniformDeployment().generate(
        64, FIELD, np.random.default_rng(11))

    def run():
        total = 0
        for c in centers:
            total += len(true_knn(net, c, 20))
        return total

    assert benchmark(run) == 64 * 20


def test_perf_full_simulated_second(benchmark):
    """One simulated second of a warm 200-node beaconing network."""
    benchmark.extra_info["bench_id"] = "net.full_simulated_second"
    from repro.mobility import RandomWaypointMobility
    from repro.net import Network, SensorNode

    def build():
        sim = Simulator(seed=9)
        net = Network(sim)
        rng = np.random.default_rng(9)
        for i, pos in enumerate(
                UniformDeployment().generate(200, FIELD, rng)):
            net.add_node(SensorNode(i, RandomWaypointMobility(
                pos, FIELD, sim.rng.stream(f"m{i}"), max_speed=10.0)))
        net.warm_up()
        return sim

    sim = build()

    def run():
        sim.run(until=sim.now + 1.0)
        return sim.events_executed

    assert benchmark(run) > 0
