"""Shared fixtures for the figure-regeneration benchmarks.

The sweeps are computed once per session (they are the expensive part) and
shared by the per-panel benchmark tests.  Scale knobs via environment:

* ``REPRO_BENCH_REPEATS``  — runs averaged per point (default 2;
  paper: 20)
* ``REPRO_BENCH_DURATION`` — seconds of simulated time per run
  (default 30; paper: 100)
* ``REPRO_BENCH_QUICK=1``  — tiny sweeps for smoke-testing the harness
"""

from __future__ import annotations

import os

import pytest

from repro.core import DIKNNProtocol
from repro.experiments import (SimulationConfig, build_simulation,
                               default_protocol_factories, fig8_sweep,
                               fig9_sweep, run_query)
from repro.geometry import Vec2

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "1" if QUICK else "2"))
DURATION = float(os.environ.get("REPRO_BENCH_DURATION",
                                "12" if QUICK else "30"))
K_VALUES = (20, 60, 100) if QUICK else (20, 40, 60, 80, 100)
SPEEDS = (5.0, 30.0) if QUICK else (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


@pytest.fixture(scope="session")
def fig8():
    """Figure 8 sweep: k from 20 to 100 at µmax = 10 m/s."""
    return fig8_sweep(base=SimulationConfig(seed=1, max_speed=10.0),
                      k_values=K_VALUES,
                      factories=default_protocol_factories(),
                      repeats=REPEATS, duration=DURATION)


@pytest.fixture(scope="session")
def fig9():
    """Figure 9 sweep: µmax from 5 to 30 m/s at k = 40."""
    return fig9_sweep(base=SimulationConfig(seed=2), speeds=SPEEDS, k=40,
                      factories=default_protocol_factories(),
                      repeats=REPEATS, duration=DURATION)


@pytest.fixture(scope="session")
def warm_handle():
    """A warmed-up default simulation for single-query micro-benchmarks."""
    handle = build_simulation(SimulationConfig(seed=5), DIKNNProtocol())
    handle.warm_up()
    return handle


def one_query(handle, k=20, point=Vec2(60, 60)):
    """A representative single query (the micro-benchmark payload)."""
    return run_query(handle, point, k=k, timeout=20.0)
