"""E0 — the paper's §5.1 default-parameter table, and a single-query
micro-benchmark on exactly that configuration."""

from conftest import one_query

from repro.experiments import PAPER_DEFAULTS, SimulationConfig, defaults_table


def test_e0_parameter_table(benchmark, warm_handle):
    """Regenerates the settings table and times one default-config query."""
    print()
    print(defaults_table())

    cfg = SimulationConfig()
    assert cfg.n_nodes == PAPER_DEFAULTS["node_number"][0]
    assert cfg.field_size == (115.0, 115.0)
    assert cfg.radio_range == PAPER_DEFAULTS["radio_range_r"][0]
    assert cfg.beacon_interval == PAPER_DEFAULTS["beacon_interval"][0]
    assert cfg.max_speed == PAPER_DEFAULTS["mu_max"][0]
    assert cfg.query_interval_mean == PAPER_DEFAULTS["query_interval"][0]
    assert cfg.assurance_gain == PAPER_DEFAULTS["assurance_gain"][0]

    outcome = benchmark.pedantic(one_query, args=(warm_handle,),
                                 rounds=3, iterations=1)
    assert outcome is not None
