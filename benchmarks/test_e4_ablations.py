"""E11–E14 — ablations of the design choices DESIGN.md calls out.

* E11: KNNB vs KPT's conservative boundary radius (§4.2).
* E12: itinerary width w = sqrt(3) r / 2 (coverage vs length, §3.3).
* E13: rendezvous adjustment and assurance gain (§4.3).
* E14: sector-count adaptivity (§3.3).
"""

import math
import random

import pytest
from conftest import one_query

from repro.core import (DIKNNConfig, DIKNNProtocol, build_itineraries,
                        conservative_radius, full_coverage_width,
                        optimal_radius)
from repro.experiments import SimulationConfig, build_simulation, run_query
from repro.geometry import Vec2, segment_point_distance


def test_e11_knnb_vs_conservative_radius(benchmark):
    """E11: measured KNNB radii stay near the optimal circle while the
    original KPT boundary grows quadratically in area and floods the
    field; the paper quotes a ~1/sqrt(k*pi) radius ratio."""
    handle = build_simulation(SimulationConfig(seed=9, max_speed=0.0),
                              DIKNNProtocol())
    handle.warm_up()
    density = 200 / (115.0 * 115.0)
    print("\nE11: KNNB vs conservative boundary")
    print(f"{'k':>4} {'KNNB':>7} {'optimal':>8} {'conserv.':>9} {'ratio':>7}"
          f" {'1/sqrt(k pi)':>12}")
    rows = []
    for k in (10, 20, 40, 80):
        outcome = run_query(handle, Vec2(65, 60), k=k, timeout=20.0)
        est = outcome.meta["initial_radius"]
        cons = conservative_radius(k, max_hop_distance=15.0)
        rows.append((k, est, cons))
        print(f"{k:>4} {est:>7.1f} {optimal_radius(density, k):>8.1f} "
              f"{cons:>9.0f} {est / cons:>7.3f} "
              f"{1 / math.sqrt(k * math.pi):>12.3f}")
    for k, est, cons in rows:
        assert est < cons / 3          # far smaller than conservative
        assert est < 115.0             # never floods the field
        # Same order of magnitude as the paper's quoted ratio.
        assert est / cons < 4.0 / math.sqrt(k * math.pi)
    benchmark.pedantic(one_query, args=(handle,), rounds=2, iterations=1)


def _mean_path_gap(width_factor, samples=1500):
    """Max-gap statistic: fraction of boundary points farther than the
    radio range from the itinerary path."""
    r = 20.0
    w = width_factor * full_coverage_width(r)
    q = Vec2(60, 60)
    its = build_itineraries(q, 60.0, 8, w, spacing=0.8 * r)
    rng = random.Random(11)
    far = 0
    for _ in range(samples):
        a = rng.uniform(0, 2 * math.pi)
        rho = 60.0 * math.sqrt(rng.random())
        p = q + Vec2.from_polar(rho, a)
        best = min(
            segment_point_distance(it.waypoints[i], it.waypoints[i + 1], p)
            for it in its for i in range(len(it.waypoints) - 1))
        if best > 0.9 * r:
            far += 1
    total_length = sum(it.length() for it in its)
    return far / samples, total_length


def test_e12_itinerary_width_ablation(benchmark):
    """E12: w = sqrt(3)r/2 fully covers with minimal length; narrower
    widths only add length, wider widths lose coverage."""
    print("\nE12: itinerary width ablation (w as multiple of sqrt(3)r/2)")
    print(f"{'w factor':>9} {'uncovered':>10} {'path length':>12}")
    results = {}
    for factor in (0.6, 1.0, 1.8, 2.8):
        uncovered, length = _mean_path_gap(factor)
        results[factor] = (uncovered, length)
        print(f"{factor:>9.1f} {uncovered:>10.3f} {length:>12.0f}")
    # Paper width: full coverage.
    assert results[1.0][0] == 0.0
    # Narrower: still covered but strictly longer itinerary.
    assert results[0.6][0] == 0.0
    assert results[0.6][1] > results[1.0][1]
    # Much wider: shorter path but coverage holes appear.
    assert results[2.8][1] < results[1.0][1]
    assert results[2.8][0] > 0.0
    benchmark.pedantic(_mean_path_gap, args=(1.0,),
                       kwargs={"samples": 200}, rounds=2, iterations=1)


def _accuracy_with_config(config, seed=13, k=50):
    handle = build_simulation(
        SimulationConfig(seed=seed, max_speed=0.0, n_nodes=80),
        DIKNNProtocol(config))
    handle.warm_up()
    outcome = run_query(handle, Vec2(60, 60), k=k, timeout=25.0,
                        assurance_gain=0.0)
    return outcome


def test_e13_rendezvous_ablation(benchmark):
    """E13a: on a sparse field where KNNB underestimates, the rendezvous
    adjustment recovers accuracy by extending the boundary."""
    on = _accuracy_with_config(DIKNNConfig(rendezvous=True))
    off = _accuracy_with_config(DIKNNConfig(rendezvous=False))
    print(f"\nE13a rendezvous: accuracy on={on.pre_accuracy:.2f} "
          f"(R {on.meta.get('radius', 0):.0f}) "
          f"off={off.pre_accuracy:.2f} (R {off.meta.get('radius', 0):.0f})")
    assert on.pre_accuracy >= off.pre_accuracy
    assert on.meta["radius"] >= off.meta["radius"]
    benchmark.pedantic(_accuracy_with_config,
                       args=(DIKNNConfig(rendezvous=True),),
                       rounds=1, iterations=1)


def test_e13_assurance_gain_ablation(benchmark):
    """E13b: the assurance gain g trades energy for boundary coverage
    under mobility — larger g never shrinks the final boundary."""
    radii = {}
    for g in (0.0, 0.5, 1.0):
        handle = build_simulation(
            SimulationConfig(seed=17, max_speed=20.0),
            DIKNNProtocol())
        handle.warm_up()
        outcome = run_query(handle, Vec2(60, 60), k=30, timeout=20.0,
                            assurance_gain=g)
        radii[g] = outcome.meta.get("radius", 0.0)
    print(f"\nE13b assurance gain -> final radius: "
          + ", ".join(f"g={g}: {r:.1f} m" for g, r in radii.items()))
    assert radii[1.0] >= radii[0.0] - 1e-6
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e14_sector_count_ablation(benchmark):
    """E14: the cone-shaped structure adapts to any parallelism degree —
    every S completes with high accuracy; more sectors shorten the
    serial per-sector traversal (latency drops from S=1 to S>=4)."""
    print("\nE14: sector count ablation (k=40, static field)")
    print(f"{'S':>3} {'latency':>8} {'accuracy':>9} {'energy':>8}")
    stats = {}
    for sectors in (1, 2, 4, 8, 16):
        handle = build_simulation(SimulationConfig(seed=21, max_speed=0.0),
                                  DIKNNProtocol(DIKNNConfig(
                                      sectors=sectors)))
        handle.warm_up()
        outcome = run_query(handle, Vec2(60, 60), k=40, timeout=30.0)
        stats[sectors] = outcome
        print(f"{sectors:>3} {outcome.latency or float('nan'):>8.2f} "
              f"{outcome.pre_accuracy:>9.2f} "
              f"{outcome.energy_j * 1000:>7.1f}m")
    for sectors, outcome in stats.items():
        assert outcome.completed
        assert outcome.pre_accuracy >= 0.6
    assert stats[8].latency < stats[1].latency
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
