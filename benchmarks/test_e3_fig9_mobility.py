"""E6–E9 — Figure 9: impact of node mobility at k = 40.

Regenerates all four panels: µmax from 5 to 30 m/s with k = 40.  Shape
assertions follow the paper's findings: DIKNN's infrastructure-free
itineraries stay stable; Peer-tree's index maintenance explodes; KPT's
tree repairs cost latency and accuracy.
"""

from conftest import one_query

from repro.metrics import mean_ignoring_nan


def test_fig9a_latency(fig9, benchmark, warm_handle):
    print("\n" + fig9.table("latency", title="Figure 9(a) — latency (s)"))
    d = fig9.metric_series("diknn", "latency")
    p = fig9.metric_series("peertree", "latency")
    # DIKNN's latency stays stable under mobility (flat-ish curve).
    assert max(d) < 2.5 * min(d)
    # Peer-tree has high latency at every speed (hierarchy round trips).
    assert mean_ignoring_nan(p) > mean_ignoring_nan(d)
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 40}, rounds=2, iterations=1)


def test_fig9b_energy(fig9, benchmark, warm_handle):
    print("\n" + fig9.table("energy_j", title="Figure 9(b) — energy (J)"))
    d = fig9.metric_series("diknn", "energy_j")
    p = fig9.metric_series("peertree", "energy_j")
    # Peer-tree's energy rises with mobility (MBR-crossing updates) and is
    # the highest throughout.
    assert p[-1] > p[0] * 1.2
    assert all(pe > de for pe, de in zip(p, d))
    # DIKNN energy stays roughly flat across speeds.
    assert max(d) < 2.0 * min(d)
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 40}, rounds=2, iterations=1)


def test_fig9c_post_accuracy(fig9, benchmark, warm_handle):
    print("\n" + fig9.table("post_accuracy",
                            title="Figure 9(c) — post-accuracy"))
    d = fig9.metric_series("diknn", "post_accuracy")
    p = fig9.metric_series("peertree", "post_accuracy")
    # Peer-tree's accuracy collapses with speed ("the latest position can
    # hardly be traced by the clusterheads under high mobility").
    assert p[-1] < p[0] - 0.15
    # DIKNN stays the most accurate at high mobility.
    assert d[-1] > p[-1]
    assert d[-1] >= 0.55
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 40}, rounds=2, iterations=1)


def test_fig9d_pre_accuracy(fig9, benchmark, warm_handle):
    print("\n" + fig9.table("pre_accuracy",
                            title="Figure 9(d) — pre-accuracy"))
    d = fig9.metric_series("diknn", "pre_accuracy")
    k = fig9.metric_series("kpt", "pre_accuracy")
    p = fig9.metric_series("peertree", "pre_accuracy")
    # DIKNN degrades only mildly with speed and stays on top at 30 m/s.
    assert d[-1] >= d[0] - 0.3
    assert d[-1] >= max(k[-1], p[-1]) - 0.05
    # Peer-tree degrades dramatically.
    assert p[-1] < p[0] - 0.15
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 40}, rounds=2, iterations=1)
