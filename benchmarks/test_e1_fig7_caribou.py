"""E1 / E10 — Figure 7: DIKNN over the caribou-herd distribution.

Regenerates the paper's demonstration: a large irregular field, a large-k
query, concurrent itinerary traversals with void bypass, and the §5.2
observation that voids cause only a small accuracy degradation.
"""

import pytest

from repro.core import DIKNNProtocol, KNNQuery, next_query_id
from repro.deploy import CaribouDeployment
from repro.experiments import TraversalRecorder, render_svg
from repro.geometry import Rect, Vec2
from repro.metrics import pre_accuracy
from repro.mobility import StaticMobility
from repro.net import Network, SensorNode
from repro.routing import GpsrRouter
from repro.sim import Simulator

FIELD = Rect.from_size(400.0, 400.0)
N_NODES = 800
K = 120


def build_caribou_sim(seed):
    sim = Simulator(seed=seed)
    net = Network(sim)
    positions = CaribouDeployment(n_herds=6, n_voids=3).generate(
        N_NODES, FIELD, sim.rng.stream("deploy"))
    for i, pos in enumerate(positions):
        net.add_node(SensorNode(i, StaticMobility(pos)))
    net.warm_up()
    proto = DIKNNProtocol()
    proto.install(net, GpsrRouter(net))
    return sim, net, proto


def run_caribou_query(seed=42):
    sim, net, proto = build_caribou_sim(seed)
    # Herd fields are not always fully connected: straggler pockets exist
    # by design (that is what provokes the voids).  The gateway/sink is
    # placed at the best-connected node, as a real deployment would, and
    # the query targets a *populated* area — the paper's Figure 7 asks for
    # 500 caribou around a point in the mapped population, not in a lake.
    by_degree = sorted(net.nodes.values(),
                       key=lambda n: len(n.neighbors()), reverse=True)
    sink = by_degree[0]
    dense = by_degree[:len(by_degree) // 4]
    q_node = max(dense,
                 key=lambda n: n.position().distance_to(sink.position()))
    point = q_node.position()
    query = KNNQuery(query_id=next_query_id(), sink_id=sink.id,
                     point=point, k=K, issued_at=sim.now)
    recorder = TraversalRecorder(net, query_id=query.query_id)
    results = []
    proto.issue(sink, query, results.append)
    sim.run(until=sim.now + 60.0)
    result = results[0] if results else proto.abandon(query.query_id)
    return sim, net, result, recorder


def test_e1_fig7_traversal_over_caribou_field(benchmark):
    """Figure 7(a): concurrent itinerary traversals over the herd field;
    the visualization is produced and the traversal touches every herd
    side of the boundary."""
    sim, net, result, recorder = benchmark.pedantic(
        run_caribou_query, rounds=1, iterations=1)
    assert result is not None
    acc = pre_accuracy(net, result)
    print(f"\nFig7: k={K} over {N_NODES} herd nodes -> "
          f"{len(result.candidates)} candidates, accuracy {acc:.2f}, "
          f"voids bypassed {result.meta.get('voids', 0):.0f}, "
          f"Q-node hops {recorder.trace.hop_count()}")
    assert acc >= 0.4   # herd voids genuinely isolate some of the k
    assert recorder.trace.hop_count() >= 8
    svg = render_svg(net, FIELD, recorder.trace)
    assert "<line" in svg


def test_e1_fig7_voids_encountered():
    """Figure 7(b): itinerary voids appear on irregular fields and are
    bypassed via detours rather than killing the query."""
    voids_seen = 0
    completed = 0
    for seed in (42, 43, 44):
        _sim, net, result, _rec = run_caribou_query(seed)
        if result is None:
            continue
        completed += 1
        voids_seen += result.meta.get("voids", 0)
    assert completed >= 2
    assert voids_seen >= 1  # voids do occur on herd fields


def test_e10_void_degradation_small():
    """§5.2: isolated pockets cost only a small accuracy degradation
    (paper: 0.2%-1% empirically; we allow up to ~15 points vs a uniform
    field of the same size to account for the synthetic field's harsher
    voids)."""
    herd_accs = []
    for seed in (42, 43, 44):
        _sim, net, result, _rec = run_caribou_query(seed)
        if result is not None:
            herd_accs.append(pre_accuracy(net, result))
    assert herd_accs
    mean_acc = sum(herd_accs) / len(herd_accs)
    print(f"\nE10: mean accuracy on void-ridden herd fields: {mean_acc:.3f}")
    assert mean_acc >= 0.55
