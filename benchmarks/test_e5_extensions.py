"""E15+ — extension benchmarks beyond the paper's figures.

* E15: data-collection scheme ablation (paper footnote 1).
* E16: itinerary window queries (the [31] substrate) — recall and cost.
* E17: DIKNN under Gauss-Markov mobility (model robustness).
* E18: network lifetime under batteries (which protocol drains nodes).
"""

import pytest

from repro.core import (DIKNNConfig, DIKNNProtocol, WindowQuery,
                        WindowQueryProtocol, window_recall)
from repro.baselines import PeerTreeProtocol
from repro.deploy import UniformDeployment
from repro.experiments import SimulationConfig, build_simulation, run_query
from repro.geometry import Rect, Vec2
from repro.mobility import GaussMarkovMobility
from repro.net import Network, SensorNode
from repro.routing import GpsrRouter
from repro.sim import Simulator


def test_e15_collection_scheme_ablation(benchmark):
    """Footnote 1: the hybrid scheme beats its two components."""
    stats = {}
    for scheme in ("contention", "token_ring", "hybrid"):
        lats, accs, energies = [], [], []
        for seed in (3, 5):
            handle = build_simulation(
                SimulationConfig(seed=seed, max_speed=10.0),
                DIKNNProtocol(DIKNNConfig(collection_scheme=scheme)))
            handle.warm_up()
            outcome = run_query(handle, Vec2(60, 60), k=40, timeout=20.0)
            if outcome.latency is not None:
                lats.append(outcome.latency)
            accs.append(outcome.pre_accuracy)
            energies.append(outcome.energy_j)
        stats[scheme] = (sum(lats) / max(len(lats), 1),
                         sum(accs) / len(accs),
                         sum(energies) / len(energies))
    print("\nE15: collection schemes (k=40, 10 m/s)")
    print(f"{'scheme':>11} {'latency':>8} {'accuracy':>9} {'energy':>8}")
    for scheme, (lat, acc, en) in stats.items():
        print(f"{scheme:>11} {lat:>8.2f} {acc:>9.2f} {en * 1e3:>7.1f}m")
    # Hybrid: no slower than contention, no less accurate than token ring.
    assert stats["hybrid"][0] <= stats["contention"][0] * 1.15
    assert stats["hybrid"][1] >= stats["token_ring"][1] - 0.1
    assert stats["hybrid"][1] >= 0.75
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e16_window_query_recall(benchmark):
    """Window queries over the same substrate: near-perfect recall on a
    static field, graceful degradation under mobility."""
    recalls = {}
    for speed in (0.0, 10.0):
        proto = WindowQueryProtocol()
        handle = build_simulation(
            SimulationConfig(seed=3, max_speed=speed), proto)
        handle.warm_up()
        window = Rect(40, 40, 80, 80)
        query = WindowQuery.make(sink_id=handle.sink.id, window=window,
                                 issued_at=handle.sim.now)
        results = []
        proto.issue(handle.sink, query, results.append)
        handle.sim.run(until=handle.sim.now + 30.0)
        recalls[speed] = (window_recall(handle.network, results[0])
                          if results else 0.0)
    print(f"\nE16: window recall static={recalls[0.0]:.2f} "
          f"mobile(10m/s)={recalls[10.0]:.2f}")
    assert recalls[0.0] >= 0.9
    assert recalls[10.0] >= 0.45
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e17_gauss_markov_robustness(benchmark):
    """DIKNN is mobility-model agnostic: accuracy under Gauss-Markov
    stays comparable to random waypoint at similar mean speeds."""
    field = Rect.from_size(115.0, 115.0)
    sim = Simulator(seed=11)
    net = Network(sim)
    dep = UniformDeployment().generate(200, field, sim.rng.stream("d"))
    from repro.mobility import StaticMobility
    for i, pos in enumerate(dep):
        net.add_node(SensorNode(i, GaussMarkovMobility(
            pos, field, sim.rng.stream(f"gm{i}"), mean_speed=7.0)))
    sink = SensorNode(200, StaticMobility(Vec2(8, 8)))
    net.add_node(sink)
    net.warm_up()
    proto = DIKNNProtocol()
    proto.install(net, GpsrRouter(net))
    from repro.core import KNNQuery, next_query_id
    from repro.metrics import pre_accuracy
    accs = []
    for i in range(3):
        results = []
        query = KNNQuery(query_id=next_query_id(), sink_id=sink.id,
                         point=Vec2(45 + 12 * i, 60), k=30,
                         issued_at=sim.now)
        proto.issue(sink, query, results.append)
        sim.run(until=sim.now + 12)
        accs.append(pre_accuracy(net, results[0]) if results else 0.0)
    mean_acc = sum(accs) / len(accs)
    print(f"\nE17: DIKNN accuracy under Gauss-Markov (7 m/s): "
          f"{mean_acc:.2f}")
    assert mean_acc >= 0.6
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e18_network_lifetime(benchmark):
    """Batteries: Peer-tree's maintenance drains the network faster than
    DIKNN's infrastructure-free operation."""
    deaths = {}
    for name, factory in (("diknn", lambda cfg: DIKNNProtocol()),
                          ("peertree",
                           lambda cfg: PeerTreeProtocol(cfg.field))):
        cfg = SimulationConfig(seed=13, max_speed=10.0)
        proto = factory(cfg)
        handle = build_simulation(cfg, proto)
        handle.warm_up()
        handle.network.enable_batteries(capacity_j=0.012)
        # Same query workload for both.
        for i in range(4):
            run_query(handle, Vec2(40 + 10 * i, 60), k=30, timeout=8.0)
        handle.sim.run(until=handle.sim.now + 25)
        stop = getattr(proto, "stop", None)
        if callable(stop):
            stop()
        deaths[name] = 201 - handle.network.alive_count()
    print(f"\nE18: nodes dead after identical workload (12 mJ budget): "
          f"diknn={deaths['diknn']} peertree={deaths['peertree']}")
    assert deaths["peertree"] >= deaths["diknn"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e19_aggregate_vs_enumerate(benchmark):
    """In-network aggregation: same region, same itinerary machinery,
    a fraction of the traffic."""
    from repro.core import (AggregateQuery, AggregateQueryProtocol,
                            WindowQuery, WindowQueryProtocol,
                            true_aggregate)

    region = Rect(40.0, 40.0, 85.0, 85.0)

    def run(protocol_cls, make_query):
        proto = protocol_cls()
        handle = build_simulation(
            SimulationConfig(seed=11, max_speed=0.0), proto)
        handle.warm_up()
        before = handle.network.ledger.snapshot()
        query = make_query(handle)
        results = []
        proto.issue(handle.sink, query, results.append)
        handle.sim.run(until=handle.sim.now + 40.0)
        return (handle, results[0] if results else None,
                handle.network.ledger.since(before))

    _h, window_result, window_energy = run(
        WindowQueryProtocol,
        lambda h: WindowQuery.make(h.sink.id, region, h.sim.now))
    handle, agg_result, agg_energy = run(
        AggregateQueryProtocol,
        lambda h: AggregateQuery.make(h.sink.id, region, h.sim.now))
    assert window_result is not None and agg_result is not None
    truth = true_aggregate(handle.network, region)
    print(f"\nE19: aggregate count {agg_result.state.count} "
          f"(truth {truth.count}); energy {agg_energy * 1e3:.1f} mJ vs "
          f"enumerate {window_energy * 1e3:.1f} mJ "
          f"({window_energy / agg_energy:.1f}x)")
    assert agg_result.state.count >= truth.count * 0.85
    assert agg_energy < window_energy  # the aggregation saving
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e20_shadowing_robustness(benchmark):
    """DIKNN keeps answering under irregular (log-normal shadowed)
    radio connectivity — the paper's [8] realism concern."""
    accs = []
    for seed in (3, 7):
        handle = build_simulation(
            SimulationConfig(seed=seed, shadowing_sigma=0.25),
            DIKNNProtocol())
        handle.warm_up()
        outcome = run_query(handle, Vec2(60, 60), k=30, timeout=15.0)
        accs.append(outcome.pre_accuracy)
    mean_acc = sum(accs) / len(accs)
    print(f"\nE20: DIKNN accuracy with sigma=0.25 shadowing: "
          f"{mean_acc:.2f}")
    assert mean_acc >= 0.6
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
