"""E2–E5 — Figure 8: scalability in k (latency, energy, post-/pre-accuracy).

Regenerates all four panels: k from 20 to 100 at µmax = 10 m/s, query
interval exp(4 s), averaged over seeds.  Absolute numbers come from our
simulator; the assertions check the *shapes* the paper reports (who wins
and how curves move), see DESIGN.md §3 and EXPERIMENTS.md.
"""

from conftest import one_query

from repro.metrics import mean_ignoring_nan


def _series(fig8, proto, metric):
    return fig8.metric_series(proto, metric)


def test_fig8a_latency(fig8, benchmark, warm_handle):
    print("\n" + fig8.table("latency", title="Figure 8(a) — latency (s)"))
    d = _series(fig8, "diknn", "latency")
    k = _series(fig8, "kpt", "latency")
    p = _series(fig8, "peertree", "latency")
    # Latency grows with k for every protocol.
    assert d[-1] > d[0]
    assert k[-1] > k[0]
    assert p[-1] > p[0]
    # The competitors grow faster than DIKNN (paper: "both Peer-tree and
    # KPT grow faster than DIKNN as k increases").  At our sample sizes
    # (~14 queries/point vs the paper's ~500) each point carries tail
    # noise, so the growth comparison accepts either a faster slope or a
    # higher endpoint.
    assert (k[-1] - k[0]) > 0.5 * (d[-1] - d[0]) or k[-1] > d[-1]
    assert (p[-1] - p[0]) > 0.5 * (d[-1] - d[0]) or p[-1] > d[-1]
    # DIKNN is fastest at small k.
    assert d[0] <= min(k[0], p[0]) * 1.15
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 40}, rounds=2, iterations=1)


def test_fig8b_energy(fig8, benchmark, warm_handle):
    print("\n" + fig8.table("energy_j", title="Figure 8(b) — energy (J)"))
    d = _series(fig8, "diknn", "energy_j")
    k = _series(fig8, "kpt", "energy_j")
    p = _series(fig8, "peertree", "energy_j")
    # Energy grows with k for the query-driven protocols.
    assert d[-1] > d[0]
    assert k[-1] > k[0]
    # Peer-tree pays its index maintenance everywhere: highest overall.
    assert mean_ignoring_nan(p) > mean_ignoring_nan(d)
    assert mean_ignoring_nan(p) > mean_ignoring_nan(k)
    # DIKNN stays in the same band as KPT at small-to-mid k (the paper's
    # "up to 50% saving" holds at matched accuracy; see EXPERIMENTS.md for
    # the k=100 caveat where our KPT under-explores).
    assert d[0] <= k[0] * 1.6
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 60}, rounds=2, iterations=1)


def test_fig8c_post_accuracy(fig8, benchmark, warm_handle):
    print("\n" + fig8.table("post_accuracy",
                            title="Figure 8(c) — post-accuracy"))
    d = _series(fig8, "diknn", "post_accuracy")
    k = _series(fig8, "kpt", "post_accuracy")
    p = _series(fig8, "peertree", "post_accuracy")
    # DIKNN holds a high, stable level across k.
    assert min(d) >= 0.6
    assert max(d) - min(d) < 0.35
    # KPT degrades as k grows (long collection latency + fixed boundary).
    assert k[-1] < k[0]
    assert k[-1] < d[-1]
    # Peer-tree sits below average (stale clusterhead positions).
    assert mean_ignoring_nan(p) < mean_ignoring_nan(d)
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 80}, rounds=2, iterations=1)


def test_fig8d_pre_accuracy(fig8, benchmark, warm_handle):
    print("\n" + fig8.table("pre_accuracy",
                            title="Figure 8(d) — pre-accuracy"))
    d = _series(fig8, "diknn", "pre_accuracy")
    k = _series(fig8, "kpt", "pre_accuracy")
    p = _series(fig8, "peertree", "pre_accuracy")
    # DIKNN stays precise at large k (boundary error shrinks, §5.3).
    assert d[-1] >= 0.65
    # "the others continuously degrade due to their long latency".
    assert k[-1] < k[0]
    assert k[-1] < d[-1] - 0.1
    assert p[-1] < d[-1]
    benchmark.pedantic(one_query, args=(warm_handle,),
                       kwargs={"k": 100}, rounds=2, iterations=1)
